//! The worker pool and execution engine.
//!
//! A [`Runtime`] owns a team of worker threads, one Chase-Lev deque per
//! worker, one record slab per worker, and a sharded lock-free injector
//! (one shard per worker). The team serves an **arbitrary number of
//! parallel regions concurrently**: any thread may call
//! [`Runtime::submit`], which hashes the submitter onto an injector shard,
//! publishes the region's root task there, and returns a [`RegionHandle`]
//! immediately — no lock is taken, no worker is parked, and no other
//! region is affected. [`Runtime::parallel`] is exactly
//! `submit(f).join()`: it blocks the calling thread (never a worker) until
//! the region quiesces and returns the root closure's value.
//!
//! ## Region descriptors
//!
//! Everything scoped to one region lives in a [`Region`]
//! descriptor, not in the team-wide `Shared` block: the root record (whose
//! refcount is the quiescence signal), the panic slot (a panic in region A
//! is re-raised by A's joiner and invisible to region B), and per-worker
//! attribution counters. Tasks find their region through a pointer carried
//! by every record, so the worker loop itself is region-agnostic: it pops
//! whatever task is next, whichever region it belongs to.
//!
//! ## The zero-allocation, low-contention spawn path
//!
//! A deferred spawn on the steady state touches **no global shared state**:
//!
//! 1. a [`TaskRecord`] is popped from the spawning worker's free-list slab
//!    ([`crate::slab`]) — no `malloc`;
//! 2. the closure is written inline into the record (or spilled to one box
//!    when it exceeds [`crate::task::INLINE_BYTES`] — counted in
//!    [`RuntimeStats::closure_spilled`] so kernels can assert they never
//!    spill);
//! 3. parent/child counters are updated on the *record*, whose cache lines
//!    are private to the spawning task's lineage;
//! 4. the record is pushed on the worker's own deque;
//! 5. [`EventCount::notify_one`] checks for sleepers with a fence + load
//!    and issues no wake (and no shared write) when everyone is busy.
//!
//! ## Region quiescence without a global live counter
//!
//! Liveness is derived from the record refcounts themselves: each child
//! record holds one reference on its parent for as long as the *child
//! record* exists, so a root record's count can only fall to the joiner's
//! lone handle once every descendant record has been destroyed — i.e.
//! exactly at quiescence. The joiner polls its own region's root (wake-ups
//! arrive through the progress event count); concurrent regions quiesce
//! independently because each has its own root. The `queued` count
//! survives only for the `MaxTasks`/`Adaptive` cut-offs, sharded per
//! worker and summed on demand — and is deliberately *global across
//! regions*: it is a machine-load heuristic, so tasks from every region
//! count against the same budget.
//!
//! ## Wake-ups: one at a time, then geometric ramp-up
//!
//! A spawn wakes at most one sleeper. A worker that was just woken and
//! finds work checks whether *more* work is still visible (non-empty
//! injector shards or a non-empty victim deque) and if so wakes the next
//! sleeper before executing — each wake can fan out to one more, giving a
//! herd-free geometric ramp-up instead of a thundering herd or a one-task
//! trickle.
//!
//! ## Scheduling points and continuation stealing
//!
//! Like an OpenMP runtime, workers switch tasks at task completion (the
//! worker loop) and at the scheduling-point waits (`taskwait`, taskgroup
//! wait, loop drains — see [`crate::scope`]). Every deferred task body
//! runs on a pooled **fiber** ([`crate::cont`]), so a wait that cannot
//! complete does not nest frames on the worker stack: the fiber parks
//! itself in a waiter slot and the worker returns to its dispatch loop.
//! The worker that later drives the waited condition to its zero
//! transition claims the slot and queues the continuation on its *own*
//! deque — a blocked waiter migrates to wherever its wake happened,
//! including onto a thief. Queued continuations share the deques with
//! fresh records, distinguished by a low pointer tag ([`Work`]).
//!
//! [`RuntimeStats::closure_spilled`]: crate::RuntimeStats::closure_spilled

use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::cancel::{RegionError, SubmitError};
use crate::config::{LocalOrder, RegionBudget, RuntimeConfig, RuntimeCutoff};
use crate::cont::{self, ContPool, ContSource, Continuation};
use crate::deque::{deque, Steal, Stealer, TaskDeque};
use crate::event::EventCount;
use crate::group::{Group, GroupPool};
use crate::injector::Injector;
use crate::local::CacheAligned;
use crate::region::{Completion, Region, RegionPool, RegionStats};
use crate::replay::{self, ArmOutcome, FrozenGraph, GraphCache};
use crate::rng::XorShift64;
use crate::scope::Scope;
use crate::slab::{AllocSource, RecordSlab};
use crate::stats::{RuntimeStats, WorkerCounters};
use crate::task::{TaskAttrs, TaskRecord, HOME_BOXED, HOME_REGION};
use crate::wsloop::LoopPool;

/// Worker-thread stack size. Task bodies run on pooled fiber stacks
/// ([`crate::cont`]) and blocked waits suspend instead of nesting, so the
/// worker's native stack only hosts the dispatch loop plus one layer of
/// runtime bookkeeping — pages, not megabytes.
const WORKER_STACK: usize = 512 * 1024;

/// How long a parked worker sleeps before re-probing, as a lost-wakeup
/// safety net. Wake-ups normally arrive via the event count.
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(2);

/// `Steal::Retry` attempts against one victim before moving on. A contended
/// victim is not worth spinning on: another victim (or the injector) likely
/// has work, and the parked-worker safety net catches the rest.
const MAX_STEAL_RETRIES: usize = 4;

/// State shared by the team and every region submitter/joiner. Everything
/// here is *team-scoped*; region-scoped state lives in [`Region`].
pub(crate) struct Shared {
    pub(crate) config: RuntimeConfig,
    /// Thief handles, indexed by worker.
    pub(crate) stealers: Vec<Stealer<TaskRecord>>,
    /// Sharded lock-free injector; region root tasks enter here.
    pub(crate) injector: Injector,
    /// Work-availability channel: notified on every deferred-task push (and
    /// shutdown). Idle workers park here.
    pub(crate) work: EventCount,
    /// Progress channel: notified only on *zero transitions* — a task's last
    /// child completing, a taskgroup draining, a root record's refcount
    /// falling to the joiner's handle — plus shutdown. Taskwaiters and
    /// region joiners park here, so a completion storm costs no wakes until
    /// the final one that matters.
    pub(crate) progress: EventCount,
    /// Deferred-but-unstarted task count, sharded per worker (spawners add
    /// on their own shard, executors subtract on theirs, so any shard may go
    /// negative; the sum is the true count). Only maintained when
    /// `track_queued` — i.e. when the cut-off policy needs it.
    pub(crate) queued_shards: Vec<CacheAligned<AtomicIsize>>,
    /// Does the configured cut-off need the global queued count?
    pub(crate) track_queued: bool,
    /// Hysteresis state for the adaptive cut-off (global across regions,
    /// like the queued count it watches).
    pub(crate) adaptive_serializing: AtomicBool,
    /// Root closures that outgrew the record's inline payload (submitting
    /// threads have no worker counter block; folded into
    /// `RuntimeStats::closure_spilled`).
    pub(crate) root_spilled: AtomicU64,
    /// Team shutdown flag (checked by parked workers).
    pub(crate) shutdown: AtomicBool,
    /// Per-worker statistics.
    pub(crate) counters: Vec<WorkerCounters>,
    /// Per-worker record pools; indexed by `TaskRecord::home` on free.
    pub(crate) slabs: Vec<RecordSlab>,
    /// Pooled region descriptors (see [`crate::region`]): a steady-state
    /// submission leases one instead of allocating.
    pub(crate) region_pool: RegionPool,
    /// Pooled taskgroup descriptors (see [`crate::group`]): a steady-state
    /// `taskgroup` leases one instead of allocating an `Arc`.
    pub(crate) group_pool: GroupPool,
    /// Pooled fibers (see [`crate::cont`]): every deferred task body runs
    /// on one, and a steady-state suspend/resume cycle leases and recycles
    /// instead of allocating.
    pub(crate) cont_pool: ContPool,
    /// Pooled worksharing-loop descriptors (see [`crate::wsloop`]): a
    /// steady-state worksharing `for_each` leases one instead of
    /// allocating.
    pub(crate) loop_pool: LoopPool,
    /// Regions submitted but not yet quiescent, detached ones included.
    /// `Runtime::drop` waits for this to drain before shutting the team
    /// down, so an `on_complete` callback can never be silently abandoned.
    pub(crate) live_regions: AtomicUsize,
    /// Region descriptors allocated fresh vs recycled (submitting threads
    /// have no worker counter block, like `root_spilled`).
    pub(crate) regions_fresh: AtomicU64,
    pub(crate) regions_recycled: AtomicU64,
    /// Origin of the team's coarse clock: deadlines are expressed as
    /// milliseconds since this instant.
    pub(crate) epoch: std::time::Instant,
    /// Coarse monotone clock, in milliseconds since `epoch`, stamped by
    /// workers at dispatch boundaries (every few executes, at parks, at
    /// waits) and by submitters arming a deadline. A deadline check is one
    /// relaxed load — no syscall on the hot path.
    pub(crate) clock_ms: AtomicU64,
    /// Regions cancelled (explicitly or by deadline) over the team's life.
    pub(crate) regions_cancelled: AtomicU64,
    /// Submissions shed — rejected by `try_submit` or admitted in
    /// serialising shed mode — because the in-flight region watermark was
    /// exceeded.
    pub(crate) submissions_shed: AtomicU64,
    /// Frozen dependency DAGs keyed by shape token (see
    /// [`Runtime::submit_replay`]); the cache doubles as the graphs' pool —
    /// a warm replay leases the graph out and returns it at finish, so the
    /// replay path itself allocates nothing.
    pub(crate) replay_cache: GraphCache,
    /// Replay-token submits that recorded (and froze) a new graph.
    pub(crate) replays_recorded: AtomicU64,
    /// Replay-token submits served entirely off a frozen graph.
    pub(crate) replays_hit: AtomicU64,
    /// Replays that diverged from their recording and fell back to live
    /// registration (the cached graph is invalidated).
    pub(crate) replays_diverged: AtomicU64,
    /// Cached graphs evicted to admit a new token past capacity.
    pub(crate) graphs_evicted: AtomicU64,
}

// Safety: `Shared` is shared across worker threads by design. The raw task
// pointers in the injector are exclusively-owned queue handles of live
// `TaskRecord`s whose closures are `Send`; the deque stealers hand the same
// kind of pointer over with the Chase-Lev protocol guaranteeing each is
// received exactly once. The slabs' owner-only halves are only touched by
// their owning worker threads (see `crate::slab`).
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    /// Re-stamps the coarse clock from a real time read and returns the
    /// new value. Workers call this at dispatch boundaries; anything
    /// needing "now" cheaply reads `clock_ms` instead.
    pub(crate) fn stamp_clock(&self) -> u64 {
        let now = self.epoch.elapsed().as_millis() as u64;
        // Monotone publish: racing stampers may reorder, but the clock
        // only ever needs to be a lower bound on real elapsed time.
        self.clock_ms.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// The coarse clock's last stamped value, in ms since `epoch`.
    #[inline]
    pub(crate) fn now_ms(&self) -> u64 {
        self.clock_ms.load(Ordering::Relaxed)
    }

    /// Cancels `region`, counting the transition and waking both channels
    /// so parked workers and waiters re-observe the flag promptly.
    pub(crate) fn cancel_region(&self, region: &Region) {
        if region.cancel() {
            self.regions_cancelled.fetch_add(1, Ordering::Relaxed);
            self.work.notify();
            self.progress.notify();
        }
    }

    /// Has `region`'s armed deadline passed on the coarse clock? Cheap
    /// enough for dispatch loops: two relaxed loads.
    #[inline]
    pub(crate) fn deadline_passed(&self, region: &Region) -> bool {
        let deadline = region.deadline_ms();
        deadline != 0 && self.now_ms() >= deadline
    }

    /// Sum of the queued-count shards, clamped at zero (individual shards
    /// may be transiently negative; the total is approximate by design —
    /// it drives heuristics, not correctness).
    pub(crate) fn queued_estimate(&self) -> usize {
        self.queued_shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum::<isize>()
            .max(0) as usize
    }

    /// Should a spawn at `depth` be serialised by the runtime cut-off?
    pub(crate) fn cutoff_trips(&self, local_len: usize, depth: u32) -> bool {
        let workers = self.config.num_threads;
        match self.config.cutoff {
            RuntimeCutoff::None => false,
            RuntimeCutoff::MaxTasks { per_worker } => {
                self.queued_estimate() >= per_worker * workers
            }
            RuntimeCutoff::MaxLocalQueue { max_len } => local_len >= max_len,
            RuntimeCutoff::MaxDepth { max_depth } => depth >= max_depth,
            RuntimeCutoff::Adaptive { low, high } => {
                let queued = self.queued_estimate();
                if self.adaptive_serializing.load(Ordering::Relaxed) {
                    if queued < low * workers {
                        self.adaptive_serializing.store(false, Ordering::Relaxed);
                        false
                    } else {
                        true
                    }
                } else if queued > high * workers {
                    self.adaptive_serializing.store(true, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Adjusts the caller's queued-count shard (no-op unless the cut-off
    /// policy consumes the count). `shard` is a worker index, or any hash
    /// for submitting threads — the sum is what counts.
    #[inline]
    pub(crate) fn queued_delta(&self, shard: usize, delta: isize) {
        if self.track_queued {
            self.queued_shards[shard % self.queued_shards.len()]
                .0
                .fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Drops one reference on `rec`, destroying it (and cascading up the
    /// parent chain) when it was the last. `worker_index` is the calling
    /// worker, or `None` when called from a region joiner.
    ///
    /// Destruction routes the record home: to the owner's local free list
    /// when the caller *is* the owner, onto the owner's cross-thread reclaim
    /// stack otherwise, back to the region pool for region-root records
    /// (which are embedded in their descriptor), or to the heap for
    /// individually boxed test records.
    pub(crate) fn release_record(&self, rec: NonNull<TaskRecord>, worker_index: Option<usize>) {
        let mut cur = rec;
        loop {
            let r = unsafe { cur.as_ref() };
            // Snapshot before releasing: `parent` and `region` are immutable
            // after init, but once our reference is gone the remaining
            // holder may destroy the record concurrently (for a root, the
            // spin-polling region joiner frees it the instant it observes
            // refs == 1), so `r` must not be touched after a release that
            // was not the last.
            let parent = r.parent();
            let region = r.region();
            match r.release_ref() {
                1 => {}
                // Root records: the drop to the joiner's lone handle is the
                // region-quiescence signal. Fire the region's completion
                // slot (waker or detached callback), then wake blocking
                // joiners through the progress channel. The descriptor is
                // still safe to dereference here even though refs == 1
                // already: every finishing path gates the lease return on
                // the completion slot having fired (see
                // `RegionHandle::finish_lease`), which happens inside
                // `region_quiesced`.
                2 if parent.is_none() => {
                    self.region_quiesced(region);
                    return;
                }
                _ => return,
            }
            // Sole owner now. A group pointer the record may still hold
            // (inline bookkeeping records reach here with theirs attached;
            // executed records gave theirs up at completion) is plain data:
            // the record never joined on its own behalf, so there is
            // nothing to leave and nothing to dereference — `init`
            // overwrites the cell on the next lease.
            let home = r.home;
            if home == HOME_BOXED {
                unsafe {
                    drop(Box::from_raw(
                        cur.as_ptr().cast::<MaybeUninit<TaskRecord>>(),
                    ));
                }
            } else if home == HOME_REGION {
                // The record is embedded in its region descriptor; its final
                // release is the whole region's lifecycle end. The releasing
                // path has already taken the result and panic out, so the
                // descriptor — root storage included — goes back to the pool
                // for the next submission to lease.
                debug_assert!(!region.is_null(), "region root without a region");
                let slot = worker_index.unwrap_or_else(submitter_slot);
                self.region_pool
                    .release(unsafe { NonNull::new_unchecked(region.cast_mut()) }, slot);
            } else {
                let slab = &self.slabs[home as usize];
                match worker_index {
                    Some(i) if i == home as usize => unsafe { slab.free_local(cur) },
                    _ => {
                        slab.free_remote(cur);
                        if let Some(i) = worker_index {
                            WorkerCounters::bump(&self.counters[i].slab_cross_freed);
                        }
                    }
                }
            }
            match parent {
                Some(p) => cur = p,
                None => return,
            }
        }
    }

    /// The region-quiescence zero-transition: fires the completion slot
    /// exactly once, retires the region from the live count, and notifies
    /// the progress channel for blocking joiners. A detached completion
    /// runs right here, on the completing thread (almost always a worker) —
    /// it finishes the region (result, panic, final root release) and
    /// invokes the user callback, whose panics are swallowed so they cannot
    /// tear a worker thread down.
    fn region_quiesced(&self, region: *const Region) {
        if !region.is_null() {
            // Safety: the region stays leased at least until its root's
            // final release, which is downstream of this call.
            match unsafe { (*region).complete() } {
                Some(Completion::Waker(w)) => w.wake(),
                Some(Completion::Detached(finish)) => {
                    // A panicking on_complete callback must not unwind into
                    // the worker loop; the panic is discarded like one from
                    // a detached thread.
                    drop(catch_unwind(AssertUnwindSafe(finish)));
                }
                None => {}
            }
            self.live_regions.fetch_sub(1, Ordering::Release);
        }
        self.progress.notify();
    }

    /// Settles a region's replay state at finish time (post-quiescence,
    /// sole-finisher exclusivity; called from `finish_lease` before the
    /// lease is returned): freezes and deposits a finished recording,
    /// returns a cleanly-replayed graph to the cache, and invalidates the
    /// token after a divergence or a cancelled recording.
    fn replay_finish(&self, region: &Region, cancelled: bool) {
        let rp = region.replay();
        match rp.mode() {
            replay::MODE_RECORDING => {
                let token = rp.token();
                match rp.take_recorder() {
                    // A cancelled recording suppressed spawns: the recorded
                    // shape is truncated, not the region's — drop the
                    // placeholder so the next submit records afresh.
                    Some(_) if cancelled => self.replay_cache.invalidate(token),
                    Some(recorder) => {
                        crate::bots_failpoint!("replay_freeze");
                        self.replay_cache
                            .deposit(token, FrozenGraph::freeze(*recorder));
                        self.replays_recorded.fetch_add(1, Ordering::Relaxed);
                    }
                    None => self.replay_cache.invalidate(token),
                }
            }
            replay::MODE_REPLAYING => {
                // Cancelled replays still count as hits: every dispatched
                // task retired through the frozen slots, so the graph's
                // per-execution state is clean and re-armable.
                if let Some(graph) = rp.take_graph() {
                    self.replay_cache.give_back(rp.token(), graph);
                }
                self.replays_hit.fetch_add(1, Ordering::Relaxed);
            }
            replay::MODE_DIVERGED => {
                // The recording no longer describes this token's shape:
                // drop the leased graph and the cache entry with it.
                drop(rp.take_graph());
                self.replay_cache.invalidate(rp.token());
                self.replays_diverged.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// One deque/injector item, decoded. Fresh task records and suspended
/// continuations share the queues: both blocks are 128-byte aligned, so a
/// set low bit tags a pointer as a [`Continuation`] to resume. The deque
/// itself never dereferences its pointers, making the tag safe to thread
/// through steals.
pub(crate) enum Work {
    Fresh(NonNull<TaskRecord>),
    Resume(NonNull<Continuation>),
}

const RESUME_TAG: usize = 1;

/// Decodes a queue item (see [`Work`]).
#[inline]
pub(crate) fn decode(item: NonNull<TaskRecord>) -> Work {
    let raw = item.as_ptr() as usize;
    if raw & RESUME_TAG != 0 {
        // Safety: only `encode_resume` sets the tag, on a valid pool-owned
        // continuation pointer.
        Work::Resume(unsafe { NonNull::new_unchecked((raw & !RESUME_TAG) as *mut Continuation) })
    } else {
        Work::Fresh(item)
    }
}

/// Tags a continuation for the deques (see [`Work`]).
#[inline]
fn encode_resume(c: NonNull<Continuation>) -> NonNull<TaskRecord> {
    // Safety: tagging cannot produce null (the tag sets a bit).
    unsafe { NonNull::new_unchecked(((c.as_ptr() as usize) | RESUME_TAG) as *mut TaskRecord) }
}

thread_local! {
    /// The worker context of the current thread, if it is a worker. Read by
    /// fibers instead of caching a `&WorkerCtx`: a suspended frame may be
    /// resumed by *any* worker, so "my worker" is a property of the moment,
    /// not of the frame.
    static CUR_WORKER: std::cell::Cell<*const WorkerCtx> =
        const { std::cell::Cell::new(std::ptr::null()) };
    /// The continuation mounted on the current thread (null in the bare
    /// worker loop). Maintained by `WorkerCtx::mount`, nestable: a fiber
    /// that help-executes mounts an inner fiber and restores on return.
    static CUR_CONT: std::cell::Cell<*mut Continuation> =
        const { std::cell::Cell::new(std::ptr::null_mut()) };
}

/// The calling thread's worker context. Panics off-team; task code can
/// only run on workers, so the unwrap documents an invariant.
#[inline]
pub(crate) fn current_worker() -> &'static WorkerCtx {
    let p = CUR_WORKER.with(|w| w.get());
    debug_assert!(!p.is_null(), "current_worker() called off a worker thread");
    // Safety: set once at worker start to the worker loop's frame-local
    // context, which outlives everything the thread ever executes; the
    // 'static is a lie only past team shutdown, by which point no task
    // code runs.
    unsafe { &*p }
}

/// The continuation mounted on the calling thread, if any.
#[inline]
pub(crate) fn current_cont() -> Option<NonNull<Continuation>> {
    NonNull::new(CUR_CONT.with(|c| c.get()))
}

/// The hook `bots_fiber_main` (see [`crate::cont`]) runs a handed-off
/// task through: resolves the mounting worker and executes.
pub(crate) fn fiber_execute(task: NonNull<TaskRecord>) {
    current_worker().execute(task);
}

/// Per-worker context. Owned by the worker thread; tasks reach it through
/// the [`Scope`] they are handed.
pub(crate) struct WorkerCtx {
    pub(crate) index: usize,
    pub(crate) deque: TaskDeque<TaskRecord>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) rng: std::cell::RefCell<XorShift64>,
    /// Executes since this worker last re-stamped the coarse clock; every
    /// [`CLOCK_STRIDE`]th dispatch pays the real time read.
    pub(crate) tick: std::cell::Cell<u32>,
}

/// A worker re-stamps the team's coarse clock once per this many task
/// dispatches (and at every park/wait), bounding deadline-detection
/// latency without a syscall per task.
pub(crate) const CLOCK_STRIDE: u32 = 16;

impl WorkerCtx {
    #[inline]
    pub(crate) fn counters(&self) -> &WorkerCounters {
        &self.shared.counters[self.index]
    }

    /// Allocates and initialises a record from this worker's slab. The
    /// record inherits its region from `parent`.
    #[inline]
    pub(crate) fn new_record(
        &self,
        parent: Option<NonNull<TaskRecord>>,
        group: Option<NonNull<Group>>,
        attrs: TaskAttrs,
    ) -> NonNull<TaskRecord> {
        // Safety: this is the owning worker thread.
        let (rec, source) = unsafe { self.shared.slabs[self.index].alloc() };
        let counters = self.counters();
        match source {
            AllocSource::Recycled => WorkerCounters::bump(&counters.slab_recycled),
            AllocSource::Fresh => WorkerCounters::bump(&counters.slab_fresh),
        }
        // Safety: the slot came from our slab and is free; parent is live
        // (and carries the region pointer the child inherits).
        unsafe {
            TaskRecord::init(
                rec,
                parent,
                group,
                std::ptr::null(),
                self.index as u16,
                attrs,
            )
        };
        rec
    }

    /// Pops a local task according to the configured discipline.
    pub(crate) fn pop_local(&self) -> Option<NonNull<TaskRecord>> {
        match self.shared.config.local_order {
            LocalOrder::Lifo => self.deque.pop(),
            LocalOrder::Fifo => self.deque.pop_fifo(),
        }
    }

    /// Takes one region root from the injector (own shard probed first).
    /// Only the worker main loop calls this — roots never enter through the
    /// task-switching pops of a blocked taskwait, so a waiting task cannot
    /// nest a foreign region under its own frame. Lock-free end to end; the
    /// per-shard length mirrors keep the common case (empty injector) to a
    /// handful of loads.
    pub(crate) fn pop_injector(&self) -> Option<NonNull<TaskRecord>> {
        self.shared.injector.pop(self.index)
    }

    /// One round of stealing: probes every other worker once, starting at a
    /// random victim. Retries against a contended victim are bounded by
    /// [`MAX_STEAL_RETRIES`]; past that the worker gives up on the victim
    /// (counting a miss) and moves to the next.
    pub(crate) fn try_steal(&self) -> Option<NonNull<TaskRecord>> {
        // A delay/yield here perturbs thief-vs-owner Chase-Lev timing.
        crate::bots_failpoint!("steal");
        let n = self.shared.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = self.rng.borrow_mut().below(n);
        let counters = self.counters();
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            let mut retries = 0;
            loop {
                match self.shared.stealers[victim].steal() {
                    Steal::Success(t) => {
                        WorkerCounters::bump(&counters.stolen);
                        return Some(t);
                    }
                    Steal::Retry => {
                        retries += 1;
                        if retries >= MAX_STEAL_RETRIES {
                            WorkerCounters::bump(&counters.steal_misses);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    Steal::Empty => {
                        WorkerCounters::bump(&counters.steal_misses);
                        break;
                    }
                }
            }
        }
        None
    }

    /// Is any work visible anywhere? Used to re-check before parking.
    /// Entirely lock-free: own deque length, the injector shards' length
    /// mirrors, and the other deques' stealer-side lengths.
    pub(crate) fn work_visible(&self) -> bool {
        if !self.deque.is_empty() {
            return true;
        }
        if !self.shared.injector.is_probably_empty() {
            return true;
        }
        self.shared
            .stealers
            .iter()
            .enumerate()
            .any(|(i, s)| i != self.index && !s.is_empty())
    }

    /// Wake propagation: a worker that was just woken and found work wakes
    /// the next sleeper if more work is still visible, so a burst of
    /// submissions ramps the team up geometrically (1 → 2 → 4 → ...)
    /// instead of waking one worker per event or the whole herd at once.
    #[inline]
    fn propagate_wake(&self, just_woke: &mut bool) {
        if !*just_woke {
            return;
        }
        *just_woke = false;
        let shared = &*self.shared;
        if !shared.config.wake_propagation {
            return;
        }
        // Cheapest check first: with nobody left asleep there is nothing to
        // propagate, whatever the queues look like.
        if shared.work.sleepers() > 0 && self.work_visible() {
            shared.work.notify_one();
            WorkerCounters::bump(&self.counters().wake_propagations);
        }
    }

    /// Dispatches one queue item: a fresh task is mounted on a pooled
    /// fiber; a tagged continuation is resumed where it left off. Callable
    /// from the worker loop and from inside a fiber (helping waits mount
    /// nested fibers), on the thread that owns this context.
    pub(crate) fn dispatch(&self, item: NonNull<TaskRecord>) {
        let counters = self.counters();
        match decode(item) {
            Work::Fresh(task) => {
                // Safety: this is the owning worker thread.
                let (c, src) = unsafe { self.shared.cont_pool.lease(self.index) };
                match src {
                    ContSource::Recycled => WorkerCounters::bump(&counters.conts_recycled),
                    ContSource::Fresh => WorkerCounters::bump(&counters.conts_fresh),
                }
                // Safety: a leased fiber is exclusively ours; the task's
                // queue handle transfers to the fiber.
                unsafe {
                    c.as_ref().task.set(Some(task));
                    self.mount(c);
                }
            }
            Work::Resume(c) => {
                WorkerCounters::bump(&counters.cont_resumes);
                // Safety: a queued continuation's pointer is valid for the
                // pool's whole life; the queue handle makes us the sole
                // resumer.
                unsafe {
                    if c.as_ref().last_worker.get() != self.index as u16 {
                        WorkerCounters::bump(&counters.cont_migrations);
                    }
                    c.as_ref().last_worker.set(self.index as u16);
                    c.as_ref().state.store(cont::RUNNING, Ordering::Release);
                    self.mount(c);
                }
            }
        }
    }

    /// Switches into `c` and settles its state when it switches back out:
    /// `DONE` recycles the fiber; a suspend finalises to `SUSPENDED` — or,
    /// when a waker already claimed the continuation mid-park, requeues it
    /// right here on our own deque.
    ///
    /// # Safety
    /// Caller must hold exclusive mount rights on `c` (fresh lease with a
    /// task set, or a popped `Resume` item), on this context's own thread.
    unsafe fn mount(&self, c: NonNull<Continuation>) {
        let prev = CUR_CONT.with(|cur| cur.replace(c.as_ptr()));
        c.as_ref().switch_in();
        CUR_CONT.with(|cur| cur.set(prev));
        if c.as_ref().state.load(Ordering::Acquire) == cont::DONE {
            self.shared.cont_pool.release(c, self.index);
        } else if c
            .as_ref()
            .state
            .compare_exchange(
                cont::SUSPENDING,
                cont::SUSPENDED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            // A waker stamped QUEUED between the fiber's suspend decision
            // and our detach: the wake could not push (the fiber was still
            // mounted), so the push obligation is ours.
            self.deque.push(encode_resume(c));
            self.shared.work.notify_one();
        }
    }

    /// Delivers a claimed wake ticket to `c` (see [`crate::cont`]): a
    /// still-running or mid-suspend fiber absorbs it as a `QUEUED` token;
    /// a fully parked one is pushed on *this* worker's deque — which is
    /// what migrates waiters to the thread that unblocked them.
    pub(crate) fn wake(&self, c: NonNull<Continuation>) {
        crate::bots_failpoint!("cont_resume");
        let state = unsafe { &c.as_ref().state };
        loop {
            let cur = state.load(Ordering::Acquire);
            debug_assert_ne!(cur, cont::DONE, "wake ticket outlived its wait");
            if state
                .compare_exchange_weak(cur, cont::QUEUED, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            match cur {
                // The waiter (RUNNING) eats the token in its unregister
                // path; a mid-park fiber (SUSPENDING) is requeued by its
                // detaching host when its SUSPENDED finalise fails.
                cont::RUNNING | cont::SUSPENDING => {}
                cont::SUSPENDED => {
                    self.deque.push(encode_resume(c));
                    self.shared.work.notify_one();
                }
                _ => unreachable!("woke a continuation in state {cur}"),
            }
            return;
        }
    }

    /// Executes a deferred task to completion and performs end-of-task
    /// bookkeeping (parent child-count, group membership, region
    /// attribution, record release, wake-ups). The body may suspend and
    /// resume on another worker, so everything after the invoke re-resolves
    /// the executing worker from thread-local state.
    pub(crate) fn execute(&self, rec: NonNull<TaskRecord>) {
        let shared = &*self.shared;
        shared.queued_delta(self.index, -1);
        let counters = self.counters();
        WorkerCounters::bump(&counters.executed);

        // Safety: we hold the queue handle; the record is live until we
        // release it below, and its region outlives it (see crate::region).
        let r = unsafe { rec.as_ref() };
        let region = unsafe { r.region().as_ref() };

        // Task dispatch is a cancellation point: re-stamp the coarse clock
        // every CLOCK_STRIDE dispatches, enforce the region's deadline, and
        // decide whether this task's body is skipped. A skipped dispatch
        // still performs every piece of bookkeeping below (dep retire,
        // group leave, child-done, record release) — cancellation drains
        // the region, it never strands protocol state.
        let tick = self.tick.get().wrapping_add(1);
        self.tick.set(tick);
        if tick.is_multiple_of(CLOCK_STRIDE) {
            shared.stamp_clock();
        }
        let skip = match region {
            Some(region) => {
                if !region.is_cancelled() && shared.deadline_passed(region) {
                    shared.cancel_region(region);
                }
                region.is_cancelled()
            }
            None => false,
        };

        let invoke = r.take_invoke().expect("task executed twice");
        let ec = ExecCtx { rec, skip };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The one site where a `panic` failpoint action is sound: it
            // unwinds into this catch like any task panic would.
            crate::bots_failpoint!("task_invoke");
            unsafe { invoke(rec, &ec) }
        }));
        // The body may have suspended at a wait and been resumed by another
        // worker: from here on, `self` is the *mounting* worker, not
        // necessarily the executing one. Everything below — counters, deque
        // pushes, slab routing — goes through the thread's actual context.
        let worker = current_worker();
        let counters = worker.counters();
        if let Err(payload) = outcome {
            match region {
                // Per-region capture: the payload is re-raised by this
                // region's joiner and nobody else's.
                Some(region) => region.store_panic(payload),
                // Only synthetic unit-test records have no region; they
                // never execute user closures.
                None => drop(payload),
            }
        }
        if let Some(region) = region {
            WorkerCounters::bump(&region.shard(worker.index).executed);
            // Per-region queued accounting mirrors the global one: explicit
            // spawns added on the spawner's shard, executions subtract here.
            // Roots are not queued-by-spawn, so they do not subtract.
            if r.parent().is_some() {
                region.queued_delta(worker.index, -1);
                if skip {
                    WorkerCounters::bump(&counters.skipped);
                    WorkerCounters::bump(&region.shard(worker.index).skipped);
                }
            }
        }

        // Dependency retire (release-on-exit): if this task carried depend
        // clauses, close its successor list and release every Deferred
        // task whose last unretired predecessor it was — each is pushed on
        // *this* worker's deque, so releases ride the same queue/wake
        // machinery as spawns, with no dedicated thread. Runs even when
        // the task panicked: its completion (exceptional or not) is what
        // successors wait on, and skipping it would wedge them forever.
        // Roots never carry deps; their `next` link belongs to the
        // injector (see TaskRecord::set_dep_state).
        if r.parent().is_some() {
            if let Some(state) = r.take_dep_state() {
                let region = region.expect("dependency task without a region");
                if replay::is_tagged(state) {
                    // A replayed task: its successors live in the frozen
                    // graph, not the tracker. Safety: the tagged state was
                    // set by the replay spawn for this record, taken exactly
                    // once; the region's graph lease outlives every
                    // replayed task.
                    unsafe {
                        replay::retire_replay(
                            region.replay(),
                            replay::untag_slot(state),
                            |released| {
                                WorkerCounters::bump(&counters.deps_released);
                                worker.deque.push(released);
                                shared.work.notify_one();
                            },
                        );
                    }
                    // Divergence waiters watch the outstanding count drain
                    // through the progress channel; the pre-decrement value
                    // covers both wait targets (1 when the waiter is itself
                    // a replayed task, 0 otherwise).
                    if region.replay().dec_outstanding() <= 2 {
                        shared.progress.notify();
                    }
                } else {
                    // Safety: `state` is the block registered for this
                    // record, taken exactly once, on the thread that just
                    // ran the task.
                    unsafe {
                        region.deps().retire(state.cast(), |released| {
                            WorkerCounters::bump(&counters.deps_released);
                            worker.deque.push(released);
                            shared.work.notify_one();
                        });
                    }
                }
            }
        }

        // Completion: a task does *not* wait for its children (that is what
        // taskwait is for); it only reports its own termination. Waiters are
        // woken only on the transitions they block on: the group draining,
        // the parent's child count reaching zero, a root refcount falling to
        // the joiner's handle (inside `release_record`). Each notify follows
        // its counter update; a suspended waiter's continuation is claimed
        // from the waited object's slot on the same zero transition.
        if let Some(group) = r.take_group() {
            // Safety: this task is a member until the `leave()` RMW; a
            // zero-driving leave's claim is covered by the CLAIMED
            // rendezvous — the lease owner cannot recycle the descriptor
            // until our claim has stamped the slot (see crate::group).
            let group = unsafe { group.as_ref() };
            if group.leave() {
                shared.progress.notify();
                if let Some(w) = group.claim_waiter() {
                    worker.wake(w);
                }
            }
        }
        if let Some(parent) = r.parent() {
            // Safety: our record's parent-reference pins the parent record
            // until `release_record` below — the claim must stay ordered
            // before it.
            let parent = unsafe { parent.as_ref() };
            if parent.child_done() {
                shared.progress.notify();
                if let Some(w) = parent.claim_waiter() {
                    worker.wake(w);
                }
            }
        }
        // Consume the queue handle; may destroy the record and cascade.
        shared.release_record(rec, Some(worker.index));
    }
}

/// Execution context handed to a task's stored closure: enough to rebuild a
/// [`Scope`] on the executing worker.
pub(crate) struct ExecCtx {
    pub(crate) rec: NonNull<TaskRecord>,
    /// Skip dispatch: the region was cancelled, so the invoke shim drops
    /// the closure (releasing captures and any spill box) instead of
    /// running the body. All other bookkeeping proceeds normally.
    pub(crate) skip: bool,
}

impl ExecCtx {
    /// Is this a skip dispatch? Read by the invoke shims.
    #[inline]
    pub(crate) fn skip(&self) -> bool {
        self.skip
    }
}

/// A `Send` wrapper for the raw region-descriptor pointer that the root
/// shim and detached-completion closures capture.
///
/// Safety: the descriptor is `Sync`, and the lease protocol
/// ([`crate::region`]) keeps it valid for as long as the capturing closure
/// can run. Closures must capture the *whole wrapper* (bind `let p = p;`
/// first): 2021 disjoint capture would otherwise grab the raw-pointer
/// field alone and un-`Send` the closure.
struct RegionPtr(NonNull<Region>);
unsafe impl Send for RegionPtr {}

/// Injector shard affinity for the calling (submitting) thread: a cached
/// hash of the thread id, so concurrent clients land on different shards
/// with high probability and a thread's submissions stay on one shard.
fn submitter_slot() -> usize {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SLOT.with(|cached| {
        let mut slot = cached.get();
        if slot == usize::MAX {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            // Cast before shifting so the top bit is cleared at every
            // pointer width — the result can never hit the sentinel.
            slot = (h.finish() as usize) >> 1;
            cached.set(slot);
        }
        slot
    })
}

thread_local! {
    /// The `Shared` block of the team this thread is a worker of, if any.
    /// Set once at worker start; lets blocking entry points reject being
    /// called from a task of the same runtime (a worker parked in a region
    /// join cannot task-switch, so the wait could deadlock the team).
    static WORKER_OF: std::cell::Cell<*const Shared> =
        const { std::cell::Cell::new(std::ptr::null()) };
}

/// A team of worker threads implementing the OpenMP 3.0 task execution
/// model, serving any number of concurrent parallel regions. See the
/// [crate docs](crate) for an overview, [`Runtime::parallel`] for the
/// blocking entry point and [`Runtime::submit`] for the non-blocking one.
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Builds a team from an explicit configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        // Construction is the cold path: populate the failpoint registry
        // here so first-fire insertions never happen on a warm path.
        #[cfg(feature = "failpoints")]
        crate::failpoint::prewarm();
        let n = config.num_threads;
        // `TaskRecord::home` is a u16 with HOME_BOXED and HOME_REGION
        // reserved: a worker index that aliased either would misroute
        // record frees.
        assert!(
            n < HOME_REGION as usize,
            "team size {n} exceeds the record home-index range"
        );
        let track_queued = matches!(
            config.cutoff,
            RuntimeCutoff::MaxTasks { .. } | RuntimeCutoff::Adaptive { .. }
        );
        let mut owners = Vec::with_capacity(n);
        let mut stealers = Vec::with_capacity(n);
        for _ in 0..n {
            let (owner, stealer) = deque::<TaskRecord>();
            owners.push(owner);
            stealers.push(stealer);
        }
        let shared = Arc::new(Shared {
            stealers,
            injector: Injector::new(n),
            work: EventCount::new(),
            progress: EventCount::new(),
            queued_shards: (0..n).map(|_| CacheAligned(AtomicIsize::new(0))).collect(),
            track_queued,
            adaptive_serializing: AtomicBool::new(false),
            root_spilled: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            counters: (0..n).map(|_| WorkerCounters::default()).collect(),
            slabs: (0..n)
                .map(|_| RecordSlab::new(config.record_chunk))
                .collect(),
            region_pool: RegionPool::new(n),
            group_pool: GroupPool::new(n),
            cont_pool: ContPool::new(n, config.cont_stack),
            loop_pool: LoopPool::new(n),
            live_regions: AtomicUsize::new(0),
            regions_fresh: AtomicU64::new(0),
            regions_recycled: AtomicU64::new(0),
            epoch: std::time::Instant::now(),
            clock_ms: AtomicU64::new(0),
            regions_cancelled: AtomicU64::new(0),
            submissions_shed: AtomicU64::new(0),
            replay_cache: GraphCache::new(config.replay_cache),
            replays_recorded: AtomicU64::new(0),
            replays_hit: AtomicU64::new(0),
            replays_diverged: AtomicU64::new(0),
            graphs_evicted: AtomicU64::new(0),
            config,
        });

        let mut handles = Vec::with_capacity(n);
        for (index, owner) in owners.into_iter().enumerate() {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("bots-worker-{index}"))
                .stack_size(WORKER_STACK)
                .spawn(move || {
                    WORKER_OF.with(|w| w.set(Arc::as_ptr(&shared)));
                    let ctx = WorkerCtx {
                        index,
                        deque: owner,
                        shared,
                        rng: std::cell::RefCell::new(XorShift64::new(
                            0x9E37_79B9 ^ ((index as u64 + 1) << 17),
                        )),
                        tick: std::cell::Cell::new(0),
                    };
                    worker_loop(&ctx);
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }

        Runtime { shared, handles }
    }

    /// Team with `n` threads and default policy.
    pub fn with_threads(n: usize) -> Self {
        Runtime::new(RuntimeConfig::new(n))
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.shared.config.num_threads
    }

    /// The configuration this team was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Aggregated statistics since the team started (monotonic; diff
    /// snapshots with [`RuntimeStats::since`] to scope them to a window, or
    /// use [`RegionHandle::stats`] for per-region attribution).
    pub fn stats(&self) -> RuntimeStats {
        let mut s = RuntimeStats::default();
        for w in &self.shared.counters {
            s.accumulate(w);
        }
        s.closure_spilled += self.shared.root_spilled.load(Ordering::Relaxed);
        s.regions_fresh = self.shared.regions_fresh.load(Ordering::Relaxed);
        s.regions_recycled = self.shared.regions_recycled.load(Ordering::Relaxed);
        s.regions_cancelled = self.shared.regions_cancelled.load(Ordering::Relaxed);
        s.submissions_shed = self.shared.submissions_shed.load(Ordering::Relaxed);
        s.replays_recorded = self.shared.replays_recorded.load(Ordering::Relaxed);
        s.replays_hit = self.shared.replays_hit.load(Ordering::Relaxed);
        s.replays_diverged = self.shared.replays_diverged.load(Ordering::Relaxed);
        s.graphs_evicted = self.shared.graphs_evicted.load(Ordering::Relaxed);
        s
    }

    /// High-water mark of pooled continuations (fibers) ever created by
    /// this team — equivalently, the most fibers that were ever live at
    /// once. Steady-state workloads should see this plateau while
    /// [`RuntimeStats::cont_suspends`] keeps climbing: that gap is the
    /// recycling the pool exists for, and leak tests pin it down.
    pub fn conts_created(&self) -> usize {
        self.shared.cont_pool.created()
    }

    /// Runs `f` as the root task of a parallel region (OpenMP
    /// `parallel` + `single`) and returns its result once the region has
    /// quiesced — i.e. after every task spawned inside, transitively, has
    /// completed. Panics from any task of *this* region are re-raised here;
    /// other regions running on the same team are unaffected.
    ///
    /// Equivalent to [`submit`](Self::submit) followed by an immediate
    /// [`RegionHandle::join`] — which is also why, unlike `submit`, it can
    /// accept non-`'static` borrows: the calling frame provably outlives
    /// the region.
    ///
    /// Must not be called from inside a task of the same runtime (the
    /// nested join panics rather than deadlock the team).
    ///
    /// A thin wrapper over `self.region(f).join()` — see
    /// [`region`](Self::region) for the composable builder surface.
    pub fn parallel<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R + Send + 'env,
        R: Send + 'env,
    {
        // Reject nested calls *before* the root is published: the root may
        // borrow this very frame, and the nested-join panic fires after
        // submission — unwinding past a published borrowing region would
        // leave tasks reading a freed stack frame.
        assert!(
            !WORKER_OF.with(|w| std::ptr::eq(w.get(), Arc::as_ptr(&self.shared))),
            "Runtime::parallel called from inside a task of the same runtime; \
             spawn a task instead, or submit from a client thread"
        );
        // Sound for the same reason as `std::thread::scope`: join() blocks
        // this frame until the region quiesces, so everything `f` borrows
        // outlives every task that can observe it.
        self.region(f).join()
    }

    /// Submits `f` as the root task of a new parallel region and returns a
    /// [`RegionHandle`] **without blocking**: the submission path is a
    /// record initialisation, one lock-free push onto an injector shard
    /// picked by hashing the submitting thread, and a sleeper-gated wake —
    /// no lock, no waiting for other regions, no worker parked on the
    /// submitter's behalf. Any number of client threads may feed regions to
    /// one team concurrently.
    ///
    /// The handle joins its region on drop (discarding result and panic),
    /// so an unjoined handle cannot leak task records; call
    /// [`RegionHandle::join`] to collect the result and re-raise the
    /// region's panic, if any. Submitting from inside a task of this
    /// runtime is allowed (it never blocks), but the handle must be joined
    /// — or dropped — on a client thread: a blocking join on a worker
    /// cannot task-switch and could deadlock the team, so it panics
    /// instead.
    ///
    /// ```
    /// use bots_runtime::Runtime;
    ///
    /// // A server: one team, many client threads, each feeding requests
    /// // as regions and collecting results without ever blocking another
    /// // client's submission.
    /// let rt = Runtime::with_threads(4);
    /// std::thread::scope(|clients| {
    ///     for client in 0..3u64 {
    ///         let rt = &rt;
    ///         clients.spawn(move || {
    ///             // Submit a batch of requests, then harvest: the regions
    ///             // run concurrently, on one shared worker team.
    ///             let handles: Vec<_> = (0..8u64)
    ///                 .map(|req| {
    ///                     rt.submit(move |s| {
    ///                         let total = std::sync::atomic::AtomicU64::new(0);
    ///                         s.taskgroup(|s| {
    ///                             for part in 0..4 {
    ///                                 let total = &total;
    ///                                 s.spawn(move |_| {
    ///                                     let work = client * 100 + req * 4 + part;
    ///                                     total.fetch_add(
    ///                                         work,
    ///                                         std::sync::atomic::Ordering::Relaxed,
    ///                                     );
    ///                                 });
    ///                             }
    ///                         });
    ///                         total.load(std::sync::atomic::Ordering::Relaxed)
    ///                     })
    ///                 })
    ///                 .collect();
    ///             for (req, h) in handles.into_iter().enumerate() {
    ///                 let got = h.join();
    ///                 let req = req as u64;
    ///                 let want = (0..4).map(|p| client * 100 + req * 4 + p).sum::<u64>();
    ///                 assert_eq!(got, want);
    ///             }
    ///         });
    ///     }
    /// });
    /// ```
    ///
    /// A thin wrapper over `self.region(f).submit()` — see
    /// [`region`](Self::region) for the composable builder surface.
    pub fn submit<F, R>(&self, f: F) -> RegionHandle<'_, R>
    where
        F: FnOnce(&Scope<'_>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.region(f).submit()
    }

    /// [`submit`](Self::submit) with admission control: refuses the
    /// submission outright — before leasing anything — when the team
    /// already has [`RuntimeConfig::max_live_regions`] regions in flight,
    /// returning [`SubmitError::Shed`] so the caller can retry, queue or
    /// degrade at *its* layer. With no watermark configured this is plain
    /// `submit`.
    ///
    /// The check is advisory (two racing submitters may both observe room);
    /// the watermark bounds load, it does not ration slots exactly.
    ///
    /// A thin wrapper over `self.region(f).try_submit()` — see
    /// [`region`](Self::region) for the composable builder surface.
    pub fn try_submit<F, R>(&self, f: F) -> Result<RegionHandle<'_, R>, SubmitError>
    where
        F: FnOnce(&Scope<'_>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.region(f).try_submit()
    }

    /// [`submit`](Self::submit) with a deadline, measured from now: once it
    /// passes, the region is cancelled exactly as by
    /// [`RegionHandle::cancel`] — spawns are suppressed, queued tasks are
    /// dispatched body-skipped, and the joiner observes
    /// [`RegionError::Cancelled`] unless the region quiesced before the
    /// deadline. Enforcement rides the team's coarse clock (stamped by
    /// workers at dispatch boundaries and parks), so detection latency is
    /// a few milliseconds, not microseconds — deadlines bound *service
    /// time*, they are not a profiling instrument.
    ///
    /// A thin wrapper over `self.region(f).deadline(d).submit()` — see
    /// [`region`](Self::region) for the composable builder surface.
    pub fn submit_with_deadline<F, R>(
        &self,
        deadline: std::time::Duration,
        f: F,
    ) -> RegionHandle<'_, R>
    where
        F: FnOnce(&Scope<'_>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.region(f).deadline(deadline).submit()
    }

    /// [`submit`](Self::submit) with an explicit per-region cut-off budget,
    /// overriding the team default
    /// ([`RuntimeConfig::with_region_budget`]). Pass
    /// [`RegionBudget::Inherit`] to keep the default; a budget makes *this*
    /// region's spawns run inline once its own queued-task count trips the
    /// limit, leaving every other region's spawn behaviour untouched (see
    /// [`RegionStats::serialized`]).
    ///
    /// A thin wrapper over `self.region(f).budget(b).submit()` — see
    /// [`region`](Self::region) for the composable builder surface.
    pub fn submit_with_budget<F, R>(&self, budget: RegionBudget, f: F) -> RegionHandle<'_, R>
    where
        F: FnOnce(&Scope<'_>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.region(f).budget(budget).submit()
    }

    /// [`submit`](Self::submit) under a **shape token**: the first region
    /// submitted with `token` runs live and *records* the dependency DAG
    /// its `depend` clauses produce (spawn order, clause edges); the frozen
    /// graph is cached, and every later submit with the same token
    /// *replays* it — tasks carry preresolved successor lists and a release
    /// counter seeded from the frozen in-degree, so the warm path touches
    /// **no tracker mutex, no map buckets, and allocates nothing**.
    ///
    /// The token is a promise that the region's *shape* is a pure function
    /// of it: same spawn sequence, same clause structure (addresses may
    /// differ — clauses are compared by first-occurrence order, so a
    /// structurally identical region over different data replays fine).
    /// The promise is **checked, not trusted**: every replayed spawn's
    /// clause list is hashed against the recording, and a mismatch
    /// *diverges* the region — it drains the matched prefix, falls back to
    /// live registration for the rest, invalidates the cached graph, and
    /// still produces exactly the results a live run would have
    /// ([`RuntimeStats::replays_diverged`] counts these). Spawn the
    /// dependency graph from a single clause-free generator task (the
    /// SparseLU pattern); see the crate README's replay section for the
    /// precise contract.
    ///
    /// Works with any number of concurrent regions: a token whose graph is
    /// already leased to another in-flight region simply runs live this
    /// time. Cache capacity is [`RuntimeConfig::replay_cache`].
    ///
    /// A thin wrapper over `self.region(f).replay(token).submit()` — see
    /// [`region`](Self::region) for the composable builder surface.
    pub fn submit_replay<F, R>(&self, token: u64, f: F) -> RegionHandle<'_, R>
    where
        F: FnOnce(&Scope<'_>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.region(f).replay(token).submit()
    }

    /// [`parallel`](Self::parallel) under a shape token: exactly
    /// [`submit_replay`](Self::submit_replay) followed by an immediate
    /// join, with the same non-`'static` borrow allowance as `parallel`
    /// (the calling frame provably outlives the region).
    ///
    /// A thin wrapper over `self.region(f).replay(token).join()` — see
    /// [`region`](Self::region) for the composable builder surface.
    pub fn parallel_replay<'env, F, R>(&self, token: u64, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R + Send + 'env,
        R: Send + 'env,
    {
        assert!(
            !WORKER_OF.with(|w| std::ptr::eq(w.get(), Arc::as_ptr(&self.shared))),
            "Runtime::parallel_replay called from inside a task of the same \
             runtime; spawn a task instead, or submit from a client thread"
        );
        self.region(f).replay(token).join()
    }

    /// Starts building a parallel region around `body`: chain any of
    /// [`budget`](RegionBuilder::budget), [`deadline`](RegionBuilder::deadline)
    /// and [`replay`](RegionBuilder::replay), then finish with
    /// [`submit`](RegionBuilder::submit), [`try_submit`](RegionBuilder::try_submit)
    /// or [`join`](RegionBuilder::join).
    ///
    /// This is the one submit surface; the named methods (`parallel`,
    /// `submit`, `submit_with_budget`, `submit_with_deadline`,
    /// `submit_replay`, `parallel_replay`, `try_submit`) are thin wrappers
    /// over it, kept for familiarity. Unlike them, the builder composes:
    /// a region with a budget *and* a deadline *and* a replay token is one
    /// chain, not a missing method.
    ///
    /// ```
    /// use bots_runtime::{RegionBudget, Runtime};
    /// use std::time::Duration;
    ///
    /// let rt = Runtime::with_threads(2);
    /// // Blocking, like `parallel`, but with a budget and a deadline too.
    /// let sum = rt
    ///     .region(|s| {
    ///         let total = std::sync::atomic::AtomicU64::new(0);
    ///         s.taskgroup(|s| {
    ///             for i in 0..10u64 {
    ///                 let total = &total;
    ///                 s.spawn(move |_| {
    ///                     total.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
    ///                 });
    ///             }
    ///         });
    ///         total.load(std::sync::atomic::Ordering::Relaxed)
    ///     })
    ///     .budget(RegionBudget::MaxQueued(64))
    ///     .deadline(Duration::from_secs(5))
    ///     .join();
    /// assert_eq!(sum, 45);
    ///
    /// // Non-blocking, like `submit`: same chain, `.submit()` instead.
    /// let handle = rt.region(|_| 7u32).submit();
    /// assert_eq!(handle.join(), 7);
    /// ```
    // The bound is not used here — it exists so the closure literal's
    // `&Scope` lifetimes are inferred exactly as `parallel`'s would be
    // (outer reference higher-ranked, inner pinned to `'env`); without it
    // a plain `|s| ...` closure fails to unify with the finishers' bounds.
    pub fn region<'env, F, R>(&self, body: F) -> RegionBuilder<'_, F>
    where
        F: FnOnce(&Scope<'env>) -> R + Send + 'env,
        R: Send + 'env,
    {
        RegionBuilder {
            rt: self,
            body,
            budget: RegionBudget::Inherit,
            deadline: None,
            replay: None,
        }
    }

    /// The shared submission path behind [`region`](Self::region) and every
    /// named wrapper. **Zero heap allocations in the steady
    /// state**: the region descriptor (root record, result slot, shards
    /// included) is leased from the pool, and the root closure is stored
    /// inline in the embedded root record.
    ///
    /// Lifetime contract (private; upheld by the public wrappers): the
    /// `'env` lifetime is erased by the record's raw closure storage, so the
    /// returned handle must quiesce — via `join`, poll-to-ready or drop —
    /// before `'env` ends. `submit` instantiates `'env = 'static`;
    /// `parallel` joins before returning.
    fn submit_inner<'env, F, R>(
        &self,
        f: F,
        budget: RegionBudget,
        deadline: Option<std::time::Duration>,
        replay_token: Option<u64>,
    ) -> RegionHandle<'_, R>
    where
        F: FnOnce(&Scope<'env>) -> R + Send + 'env,
        R: Send + 'env,
    {
        let shared = &self.shared;
        let budget = match budget {
            RegionBudget::Inherit => shared.config.region_budget,
            explicit => explicit,
        };
        let slot = submitter_slot();
        let (region, fresh) = shared.region_pool.lease(slot, budget);
        if fresh {
            shared.regions_fresh.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.regions_recycled.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(d) = deadline {
            // Deadlines are absolute coarse-clock values; 0 means "none",
            // so a zero-duration deadline still arms (at >= 1 ms).
            let at = shared
                .stamp_clock()
                .saturating_add(d.as_millis() as u64)
                .max(1);
            unsafe { region.as_ref() }.set_deadline_ms(at);
        }
        // Overload shedding for the infallible submit paths: over the
        // watermark the region is still admitted — refusal belongs to
        // `try_submit` — but in *shed mode*, where its clause-free spawns
        // serialise inline so overload stops growing the queues.
        let limit = shared.config.max_live_regions;
        if limit > 0 && shared.live_regions.load(Ordering::Relaxed) >= limit {
            shared.submissions_shed.fetch_add(1, Ordering::Relaxed);
            unsafe { region.as_ref() }.set_shed_mode();
        }
        // Arm record-and-replay while the lease is still exclusively ours:
        // the injector handoff below is the publication edge the region's
        // tasks synchronise on, so plain stores suffice here.
        if let Some(token) = replay_token {
            let r = unsafe { region.as_ref() };
            match shared.replay_cache.arm(token) {
                ArmOutcome::Replay(graph) => r.replay().arm_replay(token, graph),
                ArmOutcome::Record { evicted } => {
                    if evicted {
                        shared.graphs_evicted.fetch_add(1, Ordering::Relaxed);
                    }
                    r.replay().arm_record(token);
                }
                // Graph leased to another in-flight region (or still being
                // recorded): run plain live, uncounted — the token gets its
                // replay next time.
                ArmOutcome::Busy => {}
            }
        }

        // Root record: embedded in the descriptor, held by two handles —
        // the injector queue's and the joiner's.
        let root = unsafe { region.as_ref() }.root();
        unsafe {
            TaskRecord::init(
                root,
                None,
                None,
                region.as_ptr(),
                HOME_REGION,
                TaskAttrs::tied(),
            );
            root.as_ref().add_ref();
        }

        // Root shim: run the user closure, store the result in the region's
        // inline slot. The raw descriptor pointer crosses into the closure
        // behind [`RegionPtr`]; it stays valid because the lease outlives
        // the root task (see crate::region).
        let regp = RegionPtr(region);
        let spilled = unsafe {
            TaskRecord::store_closure(root, move |ec: &ExecCtx| {
                // Whole-wrapper capture; see `RegionPtr`.
                let regp = regp;
                let scope = Scope::from_exec(ec);
                let out = f(&scope);
                if regp.0.as_ref().store_result(out) {
                    // An oversized result is a spill like an oversized
                    // closure: one box, visible in the same counter.
                    WorkerCounters::bump(&current_worker().counters().closure_spilled);
                }
            })
        };
        if spilled {
            shared.root_spilled.fetch_add(1, Ordering::Relaxed);
        }

        shared.live_regions.fetch_add(1, Ordering::Relaxed);
        shared.queued_delta(slot, 1);
        shared.injector.push(root, slot);
        // One region root → at most one extra pair of hands; wake
        // propagation fans further wakes out as the region unfolds.
        shared.work.notify_one();

        RegionHandle {
            rt: self,
            region,
            quiesced: false,
            final_stats: None,
            _result: std::marker::PhantomData,
        }
    }
}

/// A parallel region under construction: the single submit surface behind
/// every [`Runtime`] entry point. Obtained from [`Runtime::region`]; holds
/// the root closure and the region's knobs (budget, deadline, replay
/// token), all defaulted to "inherit the team configuration", until one of
/// the three finishers runs it:
///
/// * [`submit`](Self::submit) — non-blocking, returns a [`RegionHandle`]
///   (requires `'static`, like [`Runtime::submit`]);
/// * [`try_submit`](Self::try_submit) — `submit` behind the
///   [`RuntimeConfig::max_live_regions`] admission watermark;
/// * [`join`](Self::join) — blocking, returns the root's result and may
///   borrow the calling frame (like [`Runtime::parallel`]).
///
/// Building is free: no lease, no queue traffic, nothing observable happens
/// until a finisher is called.
///
/// [`RuntimeConfig::max_live_regions`]: crate::RuntimeConfig::max_live_regions
#[must_use = "a RegionBuilder does nothing until .submit(), .try_submit() or .join() is called"]
pub struct RegionBuilder<'rt, F> {
    rt: &'rt Runtime,
    body: F,
    budget: RegionBudget,
    deadline: Option<std::time::Duration>,
    replay: Option<u64>,
}

impl<'rt, F> RegionBuilder<'rt, F> {
    /// Overrides the team's default cut-off budget for this region alone
    /// (see [`Runtime::submit_with_budget`] for the semantics).
    /// [`RegionBudget::Inherit`] — the default — keeps the team setting.
    pub fn budget(mut self, budget: RegionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms a deadline, measured from submission (see
    /// [`Runtime::submit_with_deadline`] for semantics and clock
    /// granularity). Once it passes, the region is cancelled as by
    /// [`RegionHandle::cancel`].
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Runs the region under a dependency-replay **shape token** (see
    /// [`Runtime::submit_replay`] for the recording/replay contract the
    /// token promises).
    pub fn replay(mut self, token: u64) -> Self {
        self.replay = Some(token);
        self
    }

    /// Submits the region without blocking, returning its
    /// [`RegionHandle`]. Exactly [`Runtime::submit`] plus whatever knobs
    /// were chained.
    pub fn submit<R>(self) -> RegionHandle<'rt, R>
    where
        F: FnOnce(&Scope<'static>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.rt
            .submit_inner(self.body, self.budget, self.deadline, self.replay)
    }

    /// [`submit`](Self::submit) behind the admission watermark: refuses
    /// with [`SubmitError::Shed`] — before leasing anything — when the team
    /// already has [`RuntimeConfig::max_live_regions`] regions in flight.
    /// The check is advisory, exactly as in [`Runtime::try_submit`].
    ///
    /// [`RuntimeConfig::max_live_regions`]: crate::RuntimeConfig::max_live_regions
    pub fn try_submit<R>(self) -> Result<RegionHandle<'rt, R>, SubmitError>
    where
        F: FnOnce(&Scope<'static>) -> R + Send + 'static,
        R: Send + 'static,
    {
        let limit = self.rt.shared.config.max_live_regions;
        if limit > 0 {
            let live = self.rt.shared.live_regions.load(Ordering::Relaxed);
            if live >= limit {
                self.rt
                    .shared
                    .submissions_shed
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Shed { live, limit });
            }
        }
        Ok(self
            .rt
            .submit_inner(self.body, self.budget, self.deadline, self.replay))
    }

    /// Submits the region and blocks until it quiesces, returning the
    /// root's result and re-raising its panic, if any. Like
    /// [`Runtime::parallel`], the calling frame provably outlives the
    /// region, so the body may borrow it — and like `parallel`, this must
    /// not be called from inside a task of the same runtime (it panics
    /// rather than deadlock the team).
    pub fn join<'env, R>(self) -> R
    where
        F: FnOnce(&Scope<'env>) -> R + Send + 'env,
        R: Send + 'env,
    {
        // Same ordering rationale as `Runtime::parallel`: reject nested
        // calls before the (possibly borrowing) root is published.
        assert!(
            !WORKER_OF.with(|w| std::ptr::eq(w.get(), Arc::as_ptr(&self.rt.shared))),
            "RegionBuilder::join called from inside a task of the same \
             runtime; spawn a task instead, or submit from a client thread"
        );
        self.rt
            .submit_inner(self.body, self.budget, self.deadline, self.replay)
            .join()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Wait for in-flight regions — detached `on_complete` ones included
        // — to quiesce before shutting the team down: every registered
        // completion fires before the workers exit. (Joined regions are
        // already quiescent here: their handles borrow the runtime.)
        loop {
            if self.shared.live_regions.load(Ordering::Acquire) == 0 {
                break;
            }
            let token = self.shared.progress.prepare();
            if self.shared.live_regions.load(Ordering::Acquire) == 0 {
                self.shared.progress.cancel();
                break;
            }
            self.shared.progress.wait_timeout(token, PARK_TIMEOUT);
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify();
        self.shared.progress.notify();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Default for Runtime {
    /// Team sized by `BOTS_NUM_THREADS` or the machine's parallelism.
    fn default() -> Self {
        Runtime::new(RuntimeConfig::default())
    }
}

/// A handle on one submitted, in-flight parallel region. Obtained from
/// [`Runtime::submit`]; borrows the runtime, so the team provably outlives
/// every region it serves.
///
/// Three ways to consume a region's completion:
///
/// * [`join`](Self::join) — park the calling thread until quiescence (the
///   classic blocking shim);
/// * **poll it as a [`Future`]** — the handle registers the task's `Waker`
///   in the region descriptor's completion slot and is woken exactly once,
///   on the quiescence zero-transition, so an async server never burns a
///   blocked thread per in-flight region;
/// * [`on_complete`](Self::on_complete) — detach the region and run a
///   callback (with the result or the region's panic payload) on the
///   completing worker the moment it quiesces.
///
/// Dropping the handle **joins the region** (blocking until quiescence and
/// discarding the result and any panic), mirroring how
/// [`Runtime::parallel`] would behave if its caller ignored the result —
/// a region can therefore never outlive its handle or leak task records.
/// Leaking the handle itself (`std::mem::forget`) strands the region's
/// pooled descriptor, exactly like forgetting any owning handle.
#[must_use = "a RegionHandle joins (blocks) on drop; join(), poll or on_complete() it"]
pub struct RegionHandle<'rt, R> {
    rt: &'rt Runtime,
    /// The leased descriptor. Valid for the whole life of the handle: the
    /// pool never frees descriptors before the runtime drops, and the lease
    /// is only returned by this handle's own finishing path.
    region: NonNull<Region>,
    /// Has the final root reference been released (the lease returned)?
    quiesced: bool,
    /// Attribution snapshot taken at finish time, so `stats` keeps
    /// answering for *this* region after the descriptor has been returned
    /// (and possibly re-leased by an unrelated submission).
    final_stats: Option<RegionStats>,
    _result: std::marker::PhantomData<fn() -> R>,
}

// Safety: the handle is a lease token plus a borrow of the (Sync) runtime;
// the descriptor it points to is Sync and remains valid wherever the handle
// travels. Result values only move through it when `R: Send`.
unsafe impl<R: Send> Send for RegionHandle<'_, R> {}

/// Takes panic and result out of a quiescent region and returns the lease
/// to the pool — the one finishing sequence, shared by `join`/poll/drop
/// (through [`RegionHandle::finish`]) and the detached `on_complete` path.
///
/// Gates on the completion slot having *fired*: quiescence may have been
/// observed through the root refcount, and the thread that performed the
/// 2→1 drop is still about to dereference the descriptor inside its
/// completion fire, a few instructions behind the refcount store. The
/// lease must not be touched for finishing — let alone returned — until
/// that fire has landed.
///
/// # Safety
/// `region` must be a live lease whose region has quiesced, `R` must be
/// the submission's result type, and the caller must be the lease's sole
/// finisher.
unsafe fn finish_lease<R>(shared: &Shared, region: &Region) -> Result<R, RegionError> {
    // Yield, don't pure-spin: on an oversubscribed host the firing thread
    // may hold the only CPU this wait needs.
    while !region.completion_fired() {
        std::thread::yield_now();
    }
    let panic = region.take_panic();
    let result = if region.result_written() {
        Some(region.take_result::<R>())
    } else {
        None
    };
    // Read the cancel flag *before* releasing the root: the release
    // returns the lease, after which the descriptor may immediately serve
    // an unrelated submission.
    let cancelled = region.is_cancelled();
    // Settle replay state while the lease is still ours: deposit or give
    // back the graph (or invalidate the token) before the descriptor can
    // serve — and re-arm under — its next submission.
    shared.replay_finish(region, cancelled);
    shared.release_record(region.root(), None);
    match (panic, result) {
        // A panic outranks a stored result (the result is dropped): the
        // region did not complete normally, whatever the root managed to
        // write before another task blew up.
        (Some(payload), result) => {
            drop(result);
            Err(RegionError::Panicked(payload))
        }
        // Cancellation outranks it too: a cancelled region may well have
        // stored a root value (the root body runs to completion unless it
        // was still queued — cancellation is cooperative), but that value
        // was computed over skipped children and must not masquerade as a
        // completed result.
        (None, result) if cancelled => {
            drop(result);
            Err(RegionError::Cancelled)
        }
        (None, Some(value)) => Ok(value),
        (None, None) => panic!("root task did not record a result"),
    }
}

impl<R> RegionHandle<'_, R> {
    #[inline]
    fn region(&self) -> &Region {
        // Safety: leased for the life of the handle (see the field docs).
        unsafe { self.region.as_ref() }
    }

    /// Has the region quiesced? Non-blocking; `true` means `join` will
    /// return without waiting.
    pub fn is_finished(&self) -> bool {
        self.quiesced || self.region().root_refs() == 1
    }

    /// Cancels the region — `#pragma omp cancel parallel` from outside:
    /// the caller's half of cooperative cancellation. Already-running task
    /// bodies finish (or poll [`Scope::is_cancelled`]); spawns are
    /// suppressed and queued tasks dispatch body-skipped from here on, so
    /// the region drains to quiescence instead of finishing its work.
    /// Idempotent, non-blocking, callable from any thread. Join with
    /// [`outcome`](Self::outcome) (or [`try_join`](Self::try_join)) to
    /// observe [`RegionError::Cancelled`] without a panic.
    ///
    /// [`Scope::is_cancelled`]: crate::Scope::is_cancelled
    pub fn cancel(&self) {
        if !self.quiesced {
            self.rt.shared.cancel_region(self.region());
        }
    }

    /// Task-traffic attribution for this region so far: tasks spawned,
    /// executed and budget-serialised on its behalf, regardless of which
    /// worker ran them. After the handle has completed (e.g. polled to
    /// `Ready`), returns the final snapshot.
    pub fn stats(&self) -> RegionStats {
        match self.final_stats {
            Some(s) => s,
            None => self.region().stats(),
        }
    }

    /// Blocks until the region has quiesced — every task spawned inside it,
    /// transitively, has completed — then returns the root closure's value.
    /// A panic from any task of the region is re-raised here, and only
    /// here: concurrent regions are isolated from it.
    ///
    /// This is a thin blocking shim over the completion machinery: prefer
    /// polling the handle as a [`Future`] or [`on_complete`](Self::on_complete)
    /// when a blocked thread per region is too expensive.
    pub fn join(self) -> R {
        match self.outcome() {
            Ok(value) => value,
            Err(RegionError::Panicked(payload)) => resume_unwind(payload),
            // A cancelled region has no value to return: joining it with
            // the infallible API is a contract violation, reported as a
            // typed panic payload (`RegionError::Cancelled`) rather than
            // an opaque string. Cancellation-aware callers use `outcome`.
            Err(e @ RegionError::Cancelled) => std::panic::panic_any(e),
        }
    }

    /// Blocks until quiescence like [`join`](Self::join), but returns the
    /// region's outcome as a value: `Ok` with the root closure's result,
    /// [`RegionError::Cancelled`] when the region was cancelled (by
    /// [`cancel`](Self::cancel), [`Scope::cancel_region`] or a missed
    /// deadline — a root value stored mid-cancellation is discarded: it
    /// was computed over skipped children), or
    /// [`RegionError::Panicked`] carrying the payload of the first task
    /// panic. This is the join for cancellation-aware callers — nothing in
    /// it ever panics on a cancelled or panicked region.
    ///
    /// [`Scope::cancel_region`]: crate::Scope::cancel_region
    pub fn outcome(mut self) -> Result<R, RegionError> {
        self.wait_quiescence();
        self.finish()
    }

    /// Bounded join: waits up to `timeout` for quiescence. `None` means
    /// the region is still running — the handle is untouched and may be
    /// waited again (or cancelled, or dropped, which blocks to quiescence).
    /// `Some` carries the same outcome [`outcome`](Self::outcome) would
    /// have returned; after `Some`, the handle is finished and its drop is
    /// a no-op. The cancel-latency pattern is `cancel()` followed by
    /// `try_join` in a loop.
    pub fn try_join(&mut self, timeout: std::time::Duration) -> Option<Result<R, RegionError>> {
        if self.quiesced {
            // Contract violation, like polling a completed future: the
            // prior Some() consumed the result.
            panic!("RegionHandle waited after it already completed");
        }
        if !self.wait_quiescence_timeout(timeout) {
            return None;
        }
        Some(self.finish())
    }

    /// Detaches the region: `callback` runs the moment the region quiesces,
    /// **on the completing worker thread**, receiving the region's outcome
    /// — the root closure's value, or a [`RegionError`] when the region
    /// panicked or was cancelled (see [`outcome`](Self::outcome)). If the
    /// region has already quiesced the callback runs immediately on the
    /// calling thread.
    ///
    /// The callback should be short and must not block the worker (hand the
    /// result to a channel, wake an executor, bump a counter). A panic
    /// inside it is swallowed, like a panic in a detached thread.
    /// [`Runtime`]'s destructor waits for detached regions, so a registered
    /// callback always fires before the team shuts down.
    pub fn on_complete<F>(self, callback: F)
    where
        F: FnOnce(Result<R, RegionError>) + Send + 'static,
        R: Send + 'static,
    {
        let shared = Arc::clone(&self.rt.shared);
        let region = self.region;
        // The handle's obligations transfer to the detached finisher; its
        // own Drop must not run.
        std::mem::forget(self);
        let regp = RegionPtr(region);
        let finish = Box::new(move || {
            // Whole-wrapper capture; see `RegionPtr`.
            let regp = regp;
            // Safety: fired from (or after) the quiescence transition, as
            // the lease's sole finisher; the lease is returned inside
            // `finish_lease` — *before* the callback, which may run
            // arbitrarily long while the descriptor serves its next lease.
            let outcome = unsafe { finish_lease::<R>(&shared, regp.0.as_ref()) };
            callback(outcome);
        });
        if let Some(Completion::Detached(finish)) =
            unsafe { region.as_ref() }.register_completion(Completion::Detached(finish))
        {
            // Already quiescent: fire on the calling thread (panics here
            // propagate to the caller, who is not a worker mid-loop —
            // unless the caller *is* a worker, where execute()'s
            // catch_unwind contains them like any task panic).
            finish();
        }
    }

    /// Takes result and panic out of the quiescent region and returns the
    /// lease (after which the descriptor may be re-used by any submitter),
    /// keeping a final stats snapshot for late `stats` calls. Caller must
    /// have established quiescence.
    fn finish(&mut self) -> Result<R, RegionError> {
        assert!(!self.quiesced, "region finished twice");
        self.final_stats = Some(self.region().stats());
        // Safety: quiescent, sole finisher (guarded by `quiesced`), and `R`
        // is this handle's submission result type.
        let outcome = unsafe { finish_lease::<R>(&self.rt.shared, self.region()) };
        self.quiesced = true;
        outcome
    }

    /// Parks the calling thread until the root's refcount falls to this
    /// handle's own reference. Does **not** release the lease — callers
    /// follow up with [`finish`](Self::finish), which takes result/panic
    /// out and returns the lease.
    /// Panics when the calling thread is a worker of this handle's own
    /// team. Joining from a task of the same team would park this worker
    /// without task-switching: if every worker ends up here (trivially
    /// so on a team of one), nobody is left to run the awaited region —
    /// a permanent deadlock. Fail loudly instead (for an explicit join
    /// *and* for a handle dropped inside a task — the silent-block
    /// variant of the same bug). The region keeps running detached:
    /// `quiesced` is set so Drop does not re-enter (a double panic would
    /// abort), and the descriptor lease is deliberately never returned —
    /// its memory stays valid for the in-flight records because the pool
    /// owns it until the runtime drops.
    fn assert_off_team(&mut self) {
        let shared = &*self.rt.shared;
        if WORKER_OF.with(|w| std::ptr::eq(w.get(), shared as *const Shared)) {
            self.quiesced = true;
            panic!(
                "RegionHandle joined (or dropped) from inside a task of the same \
                 runtime; join regions from client threads only, or use \
                 on_complete() to finish them without blocking"
            );
        }
    }

    fn wait_quiescence(&mut self) {
        if self.quiesced {
            return;
        }
        self.assert_off_team();
        let shared = &*self.rt.shared;
        loop {
            if self.region().root_refs() == 1 {
                break;
            }
            let token = shared.progress.prepare();
            if self.region().root_refs() == 1 {
                shared.progress.cancel();
                break;
            }
            shared.progress.wait_timeout(token, PARK_TIMEOUT);
        }
    }

    /// Bounded [`wait_quiescence`](Self::wait_quiescence): `true` means
    /// quiescent (finish may proceed), `false` means the timeout elapsed
    /// first. Same worker-thread restriction as the unbounded wait — the
    /// park is finite here, but a worker that cannot task-switch stalls
    /// the team for the whole timeout, which is the same bug in slow
    /// motion.
    fn wait_quiescence_timeout(&mut self, timeout: std::time::Duration) -> bool {
        if self.quiesced {
            return true;
        }
        self.assert_off_team();
        let shared = &*self.rt.shared;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.region().root_refs() == 1 {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let token = shared.progress.prepare();
            if self.region().root_refs() == 1 {
                shared.progress.cancel();
                return true;
            }
            shared
                .progress
                .wait_timeout(token, (deadline - now).min(PARK_TIMEOUT));
        }
    }
}

impl<R> std::future::Future for RegionHandle<'_, R> {
    type Output = R;

    /// Completes with the root closure's value once the region quiesces.
    /// The waker is stored in the region descriptor's completion slot and
    /// woken exactly once, by the quiescence zero-transition — no thread is
    /// parked, no polling loop spins. A panic from any task of the region
    /// is re-raised by the completing `poll`.
    ///
    /// Polling never blocks and is safe from any thread, workers included.
    /// Polling again after `Ready` panics, like most futures.
    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> std::task::Poll<R> {
        // The handle is plain data (no self-references): safe to unpin.
        let this = self.get_mut();
        assert!(
            !this.quiesced,
            "RegionHandle polled after it already completed"
        );
        match this
            .region()
            .register_completion(Completion::Waker(cx.waker().clone()))
        {
            // Stored: the zero-transition will wake us (replacing any waker
            // from an earlier poll). Re-registration on every poll keeps
            // the slot current when the future migrates between tasks.
            None => std::task::Poll::Pending,
            // Already quiescent: finish inline. Cancellation surfaces as a
            // typed panic payload, mirroring `join`.
            Some(_stale) => match this.finish() {
                Ok(value) => std::task::Poll::Ready(value),
                Err(RegionError::Panicked(payload)) => resume_unwind(payload),
                Err(e @ RegionError::Cancelled) => std::panic::panic_any(e),
            },
        }
    }
}

impl<R> Drop for RegionHandle<'_, R> {
    fn drop(&mut self) {
        if !self.quiesced {
            self.wait_quiescence();
            // An unobserved region's result and panic are deliberately
            // discarded, like a panic in a detached std thread.
            let _ = self.finish();
        }
    }
}

/// The worker main loop: local pop → injector → steal rounds → park, with
/// wake propagation after a successful wake (see the module docs).
fn worker_loop(ctx: &WorkerCtx) {
    // Publish this thread's context before touching any work: everything
    // popped below may be a tagged continuation whose fiber reads
    // `current_worker()` the instant it lands.
    CUR_WORKER.with(|w| w.set(ctx as *const WorkerCtx));
    let shared = &*ctx.shared;
    let mut just_woke = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = ctx.pop_local().or_else(|| ctx.pop_injector()) {
            ctx.propagate_wake(&mut just_woke);
            ctx.dispatch(task);
            continue;
        }
        let mut found = false;
        for _ in 0..shared.config.steal_rounds {
            if let Some(task) = ctx.try_steal() {
                ctx.propagate_wake(&mut just_woke);
                ctx.dispatch(task);
                found = true;
                break;
            }
            for _ in 0..shared.config.spin_before_park {
                std::hint::spin_loop();
            }
        }
        if found {
            continue;
        }
        just_woke = false;
        // An idle worker is the cheapest clock stamper there is: re-stamp
        // on the way into (and out of) the park so armed deadlines keep
        // advancing even when no task dispatch is ticking the clock.
        shared.stamp_clock();
        // Nothing anywhere: register as a sleeper, re-check, park until an
        // event or the safety timeout.
        let token = shared.work.prepare();
        if shared.shutdown.load(Ordering::Acquire) || ctx.work_visible() {
            shared.work.cancel();
            continue;
        }
        WorkerCounters::bump(&ctx.counters().parks);
        shared.work.wait_timeout(token, PARK_TIMEOUT);
        shared.stamp_clock();
        just_woke = true;
    }
}
