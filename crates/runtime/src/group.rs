//! Pooled `taskgroup` descriptors: the last per-construct heap allocation
//! on the region hot path, eliminated.
//!
//! A [`Group`] is the membership counter behind [`Scope::taskgroup`]: every
//! task spawned while the group is active joins it (transitively), and the
//! group wait blocks until the count drains. It used to live behind an
//! `Arc<Group>` — one `malloc` per `taskgroup`, which is one per *frame* in
//! every recursive BOTS kernel, so no kernel body was actually
//! allocation-free. Groups are now plain descriptors recycled through a
//! per-worker free list ([`GroupPool`]), mirroring the region-descriptor
//! pool in spirit: a steady-state `taskgroup` touches no allocator at all.
//!
//! ## Lifetime protocol (who frees, and why it is sound)
//!
//! The descriptor's lease is owned by the **waiting frame**, not by the
//! members:
//!
//! * [`Scope::taskgroup`] leases a descriptor, runs the body, waits for
//!   `outstanding() == 0`, and only then returns the lease — on unwind as
//!   well (a guard drains the group before the frame's locals, which
//!   members may borrow, are popped).
//! * Members hold a **raw pointer**, not a counted reference. A member only
//!   dereferences it while it is still a member: `join()` happens on the
//!   spawning thread before the parent's own `leave()` (so the count can
//!   never transiently drain under a live subtree), and `leave()` — a
//!   single atomic RMW — is the member's *last* access. The waiter cannot
//!   observe zero, and therefore cannot recycle the descriptor, before
//!   that final RMW has completed.
//!
//! This sidesteps the hazard a member-frees design would have (the waiter
//! still reading `outstanding()` after the zero transition, the same race
//! the region completion slot has to gate on): here the reader *is* the
//! owner, and the ex-member never looks back. The post-`leave()`
//! completion wake goes through the team-wide progress channel, which does
//! not touch the group.
//!
//! Like the region pool, descriptor memory is never freed while the
//! runtime lives: `all` owns every descriptor ever created and releases
//! them when the team shuts down.
//!
//! [`Scope::taskgroup`]: crate::Scope::taskgroup

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cont::Continuation;
use crate::local::CacheAligned;

/// A `taskgroup` membership counter: counts every task spawned while the
/// group is active, transitively. The group wait blocks until it drains —
/// this is the *deep* wait OpenMP 3.1's `taskgroup` provides, and it is
/// what makes borrowing the spawning frame's locals sound (the frame
/// cannot be left while group members still run).
pub(crate) struct Group {
    /// Pool free-list link. Only touched while the descriptor is free (the
    /// waiter has observed `outstanding() == 0` and returned the lease), so
    /// it cannot race with live-group use.
    next: AtomicPtr<Group>,
    members: AtomicUsize,
    /// Cooperative `cancel taskgroup` flag: raised by
    /// [`Scope::cancel_group`](crate::Scope::cancel_group), observed by
    /// members' spawns (suppressed) and poll points. Reset at lease time.
    cancelled: AtomicBool,
    /// The group wait's suspended [`Continuation`], when the waiting frame
    /// parked instead of pinning its worker. Claimed (swapped out) either
    /// by the member whose `leave()` drained the group or by the waiter
    /// unregistering after a successful recheck — the swap is the
    /// exclusive wake ticket. The drain claim leaves the [`CLAIMED`]
    /// sentinel behind as a rendezvous: the lease owner must observe it
    /// before recycling the descriptor, because the draining member's
    /// claim is its true final access (after the `leave()` RMW).
    ///
    /// The lease owner is itself a member (joined at lease time, left at
    /// the top of the wait), so the count reaches zero **exactly once**
    /// per lease and at most one drain claim can ever be in flight.
    waiter: AtomicPtr<u8>,
}

/// Rendezvous sentinel the drain claim swaps into the waiter slot.
const CLAIMED: usize = 1;

impl Group {
    fn new() -> Group {
        Group {
            next: AtomicPtr::new(std::ptr::null_mut()),
            members: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            waiter: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Raises the group's cancel flag; returns `true` on the transition.
    #[inline]
    pub(crate) fn cancel(&self) -> bool {
        // relaxed-ok: monotone advisory flag; cancellation is cooperative
        // and carries no data, so no ordering is required.
        !self.cancelled.swap(true, Ordering::Relaxed)
    }

    /// Has this taskgroup been cancelled? Monotone flag, Relaxed is
    /// enough (the group drain supplies the synchronisation).
    #[inline]
    pub(crate) fn is_cancelled(&self) -> bool {
        // relaxed-ok: monotone advisory flag, see `cancel`.
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Re-arms a just-leased descriptor (exclusive: the pool only hands
    /// out drained descriptors, and the lease owner calls this before any
    /// member can join).
    #[inline]
    pub(crate) fn reset(&self) {
        // relaxed-ok: exclusive access — the pool only hands out drained
        // descriptors and no member has joined yet; the lease owner's
        // later `join()` (AcqRel) orders these writes for members.
        self.cancelled.store(false, Ordering::Relaxed);
        debug_assert!(
            // relaxed-ok: exclusive access during reset, see above.
            self.waiter.load(Ordering::Relaxed).is_null(),
            "a group was recycled with a registered waiter"
        );
        // relaxed-ok: exclusive access during reset, see above.
        self.waiter.store(std::ptr::null_mut(), Ordering::Relaxed);
    }

    /// Registers the group wait's suspending continuation. SeqCst for the
    /// same store-buffering reason as the taskwait slot: the registration
    /// must be globally ordered against the waiter's `outstanding()`
    /// recheck and a leaving member's `leave`/`claim_waiter` pair.
    ///
    /// Returns `false` when the zero-driving member's drain claim landed
    /// between the waiter's `outstanding()` read and this registration:
    /// the group is already drained, no wake is coming, and the [`CLAIMED`]
    /// stamp must stay in the slot for `await_drain_claim` — a blind swap
    /// here would destroy the rendezvous and hang the lease return.
    #[inline]
    pub(crate) fn try_register_waiter(&self, cont: NonNull<Continuation>) -> bool {
        // transition: group.waiter: null -> cont (waiter registered; a
        // CLAIMED sentinel already in the slot refuses the registration).
        match self.waiter.compare_exchange(
            std::ptr::null_mut(),
            cont.as_ptr().cast(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => true,
            Err(prev) => {
                debug_assert_eq!(prev as usize, CLAIMED, "group waiter slot was occupied");
                false
            }
        }
    }

    /// The drain claim: called exactly once per drained lease, by the
    /// member whose [`leave`](Self::leave) returned `true`. Swaps the
    /// [`CLAIMED`] rendezvous sentinel in and returns the registered
    /// waiter, if any — the exclusive wake ticket.
    #[inline]
    pub(crate) fn claim_waiter(&self) -> Option<NonNull<Continuation>> {
        // The drain-claim window: between the zero-driving `leave()` and
        // this swap the waiter may register, recheck, or unregister.
        crate::bots_failpoint!("group_claim");
        let prev = self.waiter.swap(CLAIMED as *mut u8, Ordering::SeqCst);
        debug_assert_ne!(prev as usize, CLAIMED, "double drain claim on one lease");
        NonNull::new(prev.cast())
    }

    /// Waiter-side unregistration after a successful condition recheck:
    /// takes the registration back if the drain claim has not fired yet.
    /// Returns the continuation when the waiter got itself back (no wake
    /// will arrive); `None` means the claim won and a wake (token or
    /// queued resume) is in flight for this registration.
    #[inline]
    pub(crate) fn unregister_waiter(&self, cont: NonNull<Continuation>) -> bool {
        let prev = self.waiter.swap(std::ptr::null_mut(), Ordering::SeqCst);
        if prev as usize == CLAIMED {
            // Preserve the rendezvous for `await_drain_claim`.
            // relaxed-ok: once CLAIMED is in the slot the drainer is done
            // with it; only this thread (the lease owner) reads it again.
            self.waiter.store(CLAIMED as *mut u8, Ordering::Relaxed);
            return false;
        }
        debug_assert_eq!(prev.cast::<Continuation>(), cont.as_ptr().cast());
        true
    }

    /// Rendezvous with the draining member before the lease is recycled.
    /// Call only when some *other* member's `leave()` drained the group
    /// (the owner's own leave was not last): that member will perform its
    /// drain claim — possibly *after* the waiter already observed
    /// `outstanding() == 0`. Spinning until the [`CLAIMED`] sentinel
    /// appears guarantees the drainer's last access to this descriptor
    /// has happened before it is reused. The window is two instructions
    /// wide on the drainer; the spin is effectively instant.
    #[inline]
    pub(crate) fn await_drain_claim(&self) {
        while self.waiter.load(Ordering::Acquire) as usize != CLAIMED {
            std::hint::spin_loop();
        }
        // relaxed-ok: the Acquire load above synchronised with the
        // drainer's final access; the slot is now exclusively ours.
        self.waiter.store(std::ptr::null_mut(), Ordering::Relaxed);
    }

    /// Registers one member. Called on the spawning thread *before* the
    /// spawner's own `leave()` can run, so the count never transiently
    /// drains while the subtree is still growing.
    #[inline]
    pub(crate) fn join(&self) {
        self.members.fetch_add(1, Ordering::AcqRel);
    }

    /// Leaves the group; returns `true` when this was the last member out
    /// (the transition a group waiter needs to be woken for). This RMW is
    /// the member's **final access** to the descriptor: the moment it
    /// completes, the waiter may observe zero and recycle the lease.
    #[inline]
    pub(crate) fn leave(&self) -> bool {
        // Fault injection inside the member's final-access window: a delay
        // here widens the race against the waiter's zero observation.
        crate::bots_failpoint!("group_leave");
        // SeqCst (not AcqRel): globally ordered against the leaver's
        // `claim_waiter` read and the waiter's register/recheck pair.
        self.members.fetch_sub(1, Ordering::SeqCst) == 1
    }

    /// Outstanding members. Only the lease-owning waiter may call this (a
    /// non-owner has no liveness guarantee to read through). SeqCst so the
    /// recheck after `register_waiter` cannot float above the registration.
    #[inline]
    pub(crate) fn outstanding(&self) -> usize {
        self.members.load(Ordering::SeqCst)
    }
}

/// The group-descriptor free list: one singly-linked shard per worker,
/// **owner-only** — unlike the region pool there is no cross-shard probing
/// and no cross-thread release: a group is leased and released by the same
/// worker thread (the taskgroup frame never migrates), so each shard is
/// single-threaded, pops are plain load+store, and the per-worker
/// population is bounded by that worker's deepest live group interleaving.
pub(crate) struct GroupPool {
    shards: Box<[CacheAligned<AtomicPtr<Group>>]>,
    /// Every descriptor ever allocated (cold path; freed on drop).
    all: Mutex<Vec<NonNull<Group>>>,
}

// Safety: each shard is only ever touched by its own worker thread (see
// the owner-only contract on `lease`/`release`); `all` is mutex-guarded;
// `Group` is all atomics. The teardown free in `Drop` happens-after every
// worker has been joined.
unsafe impl Send for GroupPool {}
unsafe impl Sync for GroupPool {}

impl GroupPool {
    pub(crate) fn new(workers: usize) -> GroupPool {
        GroupPool {
            shards: (0..workers.max(1))
                .map(|_| CacheAligned::default())
                .collect(),
            all: Mutex::new(Vec::new()),
        }
    }

    /// Leases a descriptor with zero members. Returns the descriptor and
    /// whether it had to be freshly allocated (`true`) or came recycled
    /// from the free list (`false`).
    ///
    /// Owner-only: `slot` must be the calling worker's own index. Both ends
    /// of a shard run on one thread — a group is leased and released by the
    /// worker executing the taskgroup frame, and frames never migrate — so
    /// the pop is a plain load + store, no RMW (the atomics exist only so
    /// the pool can be shared without interior-mutability unsafety).
    pub(crate) fn lease(&self, slot: usize) -> (NonNull<Group>, bool) {
        let shard = &self.shards[slot % self.shards.len()].0;
        // relaxed-ok: owner-only shard — lease and release both run on the
        // worker executing the taskgroup frame, so every access to this
        // shard (and to pooled descriptors' links) is single-threaded.
        if let Some(head) = NonNull::new(shard.load(Ordering::Relaxed)) {
            // relaxed-ok: owner-only shard, see above.
            let next = unsafe { head.as_ref() }.next.load(Ordering::Relaxed);
            // relaxed-ok: owner-only shard, see above.
            shard.store(next, Ordering::Relaxed);
            debug_assert_eq!(
                // relaxed-ok: owner-only shard, see above.
                unsafe { head.as_ref() }.members.load(Ordering::Relaxed),
                0,
                "a group was returned to the pool with live members"
            );
            return (head, false);
        }
        let fresh = NonNull::from(Box::leak(Box::new(Group::new())));
        self.all
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(fresh);
        (fresh, true)
    }

    /// Returns a drained descriptor to the free list. The caller must be
    /// the lease owner (same worker, same `slot` as the lease) and must
    /// have observed `outstanding() == 0`.
    pub(crate) fn release(&self, group: NonNull<Group>, slot: usize) {
        let shard = &self.shards[slot % self.shards.len()].0;
        // relaxed-ok: owner-only shard, see `lease`.
        let head = shard.load(Ordering::Relaxed);
        // relaxed-ok: owner-only shard, see `lease`.
        unsafe { group.as_ref().next.store(head, Ordering::Relaxed) };
        // relaxed-ok: owner-only shard, see `lease`.
        shard.store(group.as_ptr(), Ordering::Relaxed);
    }

    /// Free descriptors currently pooled (diagnostics/tests only; racy).
    #[cfg(test)]
    pub(crate) fn free_len(&self) -> usize {
        let mut n = 0;
        for shard in self.shards.iter() {
            let mut cur = shard.0.load(Ordering::Acquire);
            while let Some(g) = NonNull::new(cur) {
                n += 1;
                cur = unsafe { g.as_ref() }.next.load(Ordering::Relaxed);
            }
        }
        n
    }
}

impl Drop for GroupPool {
    fn drop(&mut self) {
        let all = std::mem::take(&mut *self.all.lock().unwrap_or_else(|e| e.into_inner()));
        for group in all {
            drop(unsafe { Box::from_raw(group.as_ptr()) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_leave_counts_members() {
        let pool = GroupPool::new(1);
        let (g, fresh) = pool.lease(0);
        assert!(fresh);
        let g = unsafe { g.as_ref() };
        g.join();
        g.join();
        assert_eq!(g.outstanding(), 2);
        assert!(!g.leave());
        assert!(g.leave(), "last leaver reports the zero transition");
        assert_eq!(g.outstanding(), 0);
    }

    #[test]
    fn lease_recycles_released_descriptors() {
        let pool = GroupPool::new(2);
        let (a, fresh) = pool.lease(0);
        assert!(fresh, "empty pool allocates");
        let (b, fresh) = pool.lease(0);
        assert!(fresh);
        assert_ne!(a.as_ptr(), b.as_ptr());
        pool.release(a, 0);
        let (a2, fresh) = pool.lease(0);
        assert!(!fresh, "released descriptor must be recycled");
        assert_eq!(a2.as_ptr(), a.as_ptr());
        pool.release(a2, 0);
        pool.release(b, 1);
        assert_eq!(pool.free_len(), 2);
        // Drop frees everything (asan/miri would flag a double- or no-free).
    }

    #[test]
    fn lease_pops_exactly_one() {
        let pool = GroupPool::new(1);
        let leased: Vec<_> = (0..4).map(|_| pool.lease(0).0).collect();
        for &g in &leased {
            pool.release(g, 0);
        }
        assert_eq!(pool.free_len(), 4);
        let (_one, fresh) = pool.lease(0);
        assert!(!fresh);
        assert_eq!(pool.free_len(), 3, "pop takes exactly one descriptor");
    }

    /// The register/claim race: the zero-driving member's drain claim can
    /// land between the waiter's `outstanding()` read and its
    /// registration. Registration must then back off and leave the
    /// CLAIMED rendezvous in the slot — overwriting it would hang the
    /// lease owner's `await_drain_claim` spin.
    #[test]
    fn raced_registration_preserves_the_drain_claim() {
        let pool = GroupPool::new(1);
        let (g, _) = pool.lease(0);
        let g_ref = unsafe { g.as_ref() };
        let cont = NonNull::<Continuation>::dangling();
        // Clean slot: registration wins, take-back returns it.
        assert!(g_ref.try_register_waiter(cont));
        assert!(g_ref.unregister_waiter(cont));
        // Claim first (member drained the group), then the raced
        // registration: it must refuse and keep CLAIMED in place.
        assert!(g_ref.claim_waiter().is_none());
        assert!(!g_ref.try_register_waiter(cont));
        g_ref.await_drain_claim();
        pool.release(g, 0);
    }

    #[test]
    fn shards_do_not_alias_across_workers() {
        let pool = GroupPool::new(2);
        let (a, _) = pool.lease(0);
        pool.release(a, 0);
        // Worker 1's shard is empty: it allocates fresh rather than raid
        // worker 0's shard (per-worker population stays worker-local).
        let (b, fresh) = pool.lease(1);
        assert!(fresh);
        assert_ne!(a.as_ptr(), b.as_ptr());
        pool.release(b, 1);
    }
}
