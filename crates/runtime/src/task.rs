//! Task descriptors: the runtime-side representation of an OpenMP 3.0
//! explicit task.
//!
//! Every *deferred* task is a heap allocation holding the user closure plus a
//! [`TaskNode`]. The node survives the closure (children hold `Arc`s to their
//! parent's node) and carries everything `taskwait` and the tied-task
//! scheduling constraint need: the outstanding-children count, the parent
//! link, the recursion depth and the tiedness flag.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::pool::ExecCtx;

/// Attributes attached at task-creation time, mirroring the clauses of
/// `#pragma omp task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAttrs {
    /// `untied` clause absent ⇒ tied (the OpenMP default).
    pub tied: bool,
    /// Value of the `if(...)` clause. `false` makes the task *undeferred*:
    /// it executes immediately on the encountering thread, but the runtime
    /// still performs its bookkeeping (the paper's distinction between the
    /// if-clause cut-off and a purely manual cut-off).
    pub if_clause: bool,
    /// Value of the `final(...)` clause (OpenMP 3.1 extension): a final task
    /// executes undeferred *and* all of its descendants are final too.
    pub final_clause: bool,
}

impl Default for TaskAttrs {
    fn default() -> Self {
        TaskAttrs {
            tied: true,
            if_clause: true,
            final_clause: false,
        }
    }
}

impl TaskAttrs {
    /// Tied task, unconditional creation (plain `#pragma omp task`).
    pub const fn tied() -> Self {
        TaskAttrs {
            tied: true,
            if_clause: true,
            final_clause: false,
        }
    }

    /// Untied task (`#pragma omp task untied`).
    pub const fn untied() -> Self {
        TaskAttrs {
            tied: false,
            if_clause: true,
            final_clause: false,
        }
    }

    /// Sets the `if` clause value.
    pub const fn with_if(mut self, cond: bool) -> Self {
        self.if_clause = cond;
        self
    }

    /// Sets the `final` clause value.
    pub const fn with_final(mut self, cond: bool) -> Self {
        self.final_clause = cond;
        self
    }

    /// Selects tied/untied from a boolean (convenience for version matrices).
    pub const fn with_tied(mut self, tied: bool) -> Self {
        self.tied = tied;
        self
    }
}

/// A `taskgroup` membership counter: counts every task spawned while the
/// group is active, transitively. The group wait blocks until it drains —
/// this is the *deep* wait OpenMP 3.1's `taskgroup` provides, and it is what
/// makes borrowing the spawning frame's locals sound (the frame cannot be
/// left while group members still run).
pub(crate) struct Group {
    pub(crate) members: AtomicUsize,
}

impl Group {
    pub(crate) fn new() -> Arc<Group> {
        Arc::new(Group {
            members: AtomicUsize::new(0),
        })
    }

    #[inline]
    pub(crate) fn join(&self) {
        self.members.fetch_add(1, Ordering::AcqRel);
    }

    #[inline]
    pub(crate) fn leave(&self) {
        self.members.fetch_sub(1, Ordering::AcqRel);
    }

    #[inline]
    pub(crate) fn outstanding(&self) -> usize {
        self.members.load(Ordering::Acquire)
    }
}

/// Shared bookkeeping node for one task instance.
pub(crate) struct TaskNode {
    /// Number of direct children not yet completed. `taskwait` spins/blocks
    /// on this reaching zero.
    pub(crate) children: AtomicUsize,
    /// Parent task node; `None` for a region's root (implicit) task.
    pub(crate) parent: Option<Arc<TaskNode>>,
    /// Innermost enclosing taskgroup at creation time, if any. Deferred
    /// tasks join it on spawn and leave it on completion.
    pub(crate) group: Option<Arc<Group>>,
    /// Recursion depth: root = 0, children of root = 1, ...
    pub(crate) depth: u32,
    /// Tied task? Constrains what the owning worker may run at a taskwait.
    pub(crate) tied: bool,
    /// Final task? Descendants are serialised.
    pub(crate) final_: bool,
}

impl TaskNode {
    pub(crate) fn root() -> Arc<TaskNode> {
        Arc::new(TaskNode {
            children: AtomicUsize::new(0),
            parent: None,
            group: None,
            depth: 0,
            tied: true,
            final_: false,
        })
    }

    pub(crate) fn child_of(
        parent: &Arc<TaskNode>,
        group: Option<Arc<Group>>,
        attrs: TaskAttrs,
    ) -> Arc<TaskNode> {
        Arc::new(TaskNode {
            children: AtomicUsize::new(0),
            parent: Some(parent.clone()),
            group,
            depth: parent.depth + 1,
            tied: attrs.tied,
            final_: attrs.final_clause || parent.final_,
        })
    }

    /// Registers one more outstanding child.
    #[inline]
    pub(crate) fn add_child(&self) {
        self.children.fetch_add(1, Ordering::AcqRel);
    }

    /// Marks one child complete; returns true if this was the last one.
    #[inline]
    pub(crate) fn child_done(&self) -> bool {
        self.children.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Outstanding direct children.
    #[inline]
    pub(crate) fn outstanding(&self) -> usize {
        self.children.load(Ordering::Acquire)
    }

    /// Is `self` a descendant of (or equal to) `anc`? Walks the parent chain;
    /// depths bound the walk.
    pub(crate) fn descends_from(self: &Arc<Self>, anc: &Arc<TaskNode>) -> bool {
        let mut cur = self.clone();
        loop {
            if Arc::ptr_eq(&cur, anc) {
                return true;
            }
            if cur.depth <= anc.depth {
                return false;
            }
            match &cur.parent {
                Some(p) => cur = p.clone(),
                None => return false,
            }
        }
    }
}

/// A ready-to-run deferred task: closure + node. Stored in the deques as a
/// raw pointer (`Box::into_raw`), reconstituted by the executing worker.
pub(crate) struct Task {
    /// The lifetime-erased shim closure. `Option` so execution can take it
    /// by value.
    pub(crate) run: Option<Box<dyn FnOnce(&ExecCtx<'_>) + Send + 'static>>,
    pub(crate) node: Arc<TaskNode>,
}

impl Task {
    pub(crate) fn into_ptr(self: Box<Self>) -> std::ptr::NonNull<Task> {
        // Box is never null.
        unsafe { std::ptr::NonNull::new_unchecked(Box::into_raw(self)) }
    }

    /// # Safety
    /// `ptr` must come from [`Task::into_ptr`] and not have been reclaimed.
    pub(crate) unsafe fn from_ptr(ptr: std::ptr::NonNull<Task>) -> Box<Task> {
        Box::from_raw(ptr.as_ptr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_attrs_are_tied_deferred() {
        let a = TaskAttrs::default();
        assert!(a.tied);
        assert!(a.if_clause);
        assert!(!a.final_clause);
    }

    #[test]
    fn attr_builders() {
        let a = TaskAttrs::untied().with_if(false).with_final(true);
        assert!(!a.tied);
        assert!(!a.if_clause);
        assert!(a.final_clause);
        let b = TaskAttrs::tied().with_tied(false);
        assert!(!b.tied);
    }

    #[test]
    fn node_depth_and_parentage() {
        let root = TaskNode::root();
        let attrs = TaskAttrs::default();
        let c1 = TaskNode::child_of(&root, None, attrs);
        let c2 = TaskNode::child_of(&c1, None, attrs);
        assert_eq!(root.depth, 0);
        assert_eq!(c1.depth, 1);
        assert_eq!(c2.depth, 2);
        assert!(c2.descends_from(&c1));
        assert!(c2.descends_from(&root));
        assert!(c1.descends_from(&root));
        assert!(!c1.descends_from(&c2));
        assert!(root.descends_from(&root));
    }

    #[test]
    fn sibling_is_not_descendant() {
        let root = TaskNode::root();
        let attrs = TaskAttrs::default();
        let a = TaskNode::child_of(&root, None, attrs);
        let b = TaskNode::child_of(&root, None, attrs);
        assert!(!a.descends_from(&b));
        assert!(!b.descends_from(&a));
    }

    #[test]
    fn final_propagates() {
        let root = TaskNode::root();
        let f = TaskNode::child_of(&root, None, TaskAttrs::default().with_final(true));
        let child_of_final = TaskNode::child_of(&f, None, TaskAttrs::default());
        assert!(f.final_);
        assert!(child_of_final.final_);
    }

    #[test]
    fn child_counting() {
        let root = TaskNode::root();
        root.add_child();
        root.add_child();
        assert_eq!(root.outstanding(), 2);
        assert!(!root.child_done());
        assert!(root.child_done());
        assert_eq!(root.outstanding(), 0);
    }
}
