//! Task records: the runtime-side representation of an OpenMP 3.0 explicit
//! task, rebuilt around a **single-block, pooled record**.
//!
//! The original lifecycle paid three heap allocations per deferred spawn
//! (`Arc<TaskNode>` + boxed shim closure + `Box<Task>`). A [`TaskRecord`]
//! merges all three into one intrusive, refcounted block with **inline
//! closure storage**: closures up to [`INLINE_BYTES`] live inside the
//! record; larger ones spill to a single box. Records are recycled through
//! per-worker free-list slabs ([`crate::slab`]), so a steady-state spawn
//! performs **zero heap allocations**.
//!
//! ## Lifetime protocol
//!
//! A record is created with two logical references:
//!
//! * the **queue handle** — owned by whichever deque/injector slot holds the
//!   task, consumed by the executing worker at the end of
//!   [`crate::pool::WorkerCtx::execute`];
//! * one reference **held by each child record** on its parent, released
//!   when the child record is destroyed (not merely when the child task
//!   completes — see below).
//!
//! Because a child's reference on its parent outlives the child's whole
//! *subtree*, a record reaching its final reference means every descendant
//! record has been destroyed. The region master exploits this: the region
//! is quiescent exactly when the root record's count drops to the master's
//! own handle, which replaces the old global `live` counter (one contended
//! atomic per spawn/complete) with refcount traffic distributed across the
//! task tree.
//!
//! Completion ordering for `taskwait` is a separate counter: `children` is
//! decremented when a direct child *completes* (its closure returned), which
//! is what the OpenMP direct-children wait needs, independently of how long
//! the child's record lives.

use std::cell::{Cell, UnsafeCell};
use std::mem::{align_of, size_of, MaybeUninit};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use crate::cont::Continuation;
use crate::group::Group;
use crate::pool::ExecCtx;
use crate::region::Region;

/// Attributes attached at task-creation time, mirroring the clauses of
/// `#pragma omp task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAttrs {
    /// `untied` clause absent ⇒ tied (the OpenMP default).
    pub tied: bool,
    /// Value of the `if(...)` clause. `false` makes the task *undeferred*:
    /// it executes immediately on the encountering thread, but the runtime
    /// still performs its bookkeeping (the paper's distinction between the
    /// if-clause cut-off and a purely manual cut-off).
    pub if_clause: bool,
    /// Value of the `final(...)` clause (OpenMP 3.1 extension): a final task
    /// executes undeferred *and* all of its descendants are final too.
    pub final_clause: bool,
}

impl Default for TaskAttrs {
    fn default() -> Self {
        TaskAttrs {
            tied: true,
            if_clause: true,
            final_clause: false,
        }
    }
}

impl TaskAttrs {
    /// Tied task, unconditional creation (plain `#pragma omp task`).
    pub const fn tied() -> Self {
        TaskAttrs {
            tied: true,
            if_clause: true,
            final_clause: false,
        }
    }

    /// Untied task (`#pragma omp task untied`).
    pub const fn untied() -> Self {
        TaskAttrs {
            tied: false,
            if_clause: true,
            final_clause: false,
        }
    }

    /// Sets the `if` clause value.
    pub const fn with_if(mut self, cond: bool) -> Self {
        self.if_clause = cond;
        self
    }

    /// Sets the `final` clause value.
    pub const fn with_final(mut self, cond: bool) -> Self {
        self.final_clause = cond;
        self
    }

    /// Selects tied/untied from a boolean (convenience for version matrices).
    pub const fn with_tied(mut self, tied: bool) -> Self {
        self.tied = tied;
        self
    }
}

/// Inline closure capacity, in bytes. Closures whose captures fit (and whose
/// alignment is at most [`INLINE_ALIGN`]) are stored inside the record;
/// anything larger spills to one heap box. 64 bytes covers every closure the
/// BOTS kernels spawn (typically a few borrows plus a couple of scalars).
pub(crate) const INLINE_BYTES: usize = 64;

/// Maximum supported alignment for inline closure captures.
pub(crate) const INLINE_ALIGN: usize = 16;

/// The `home` value marking a record that was individually boxed (unit-test
/// records) rather than drawn from a worker slab.
pub(crate) const HOME_BOXED: u16 = u16::MAX;

/// The `home` value marking a region-root record embedded in its pooled
/// [`Region`] descriptor: on final release the descriptor — record
/// included — is returned to the region pool instead of the heap.
pub(crate) const HOME_REGION: u16 = u16::MAX - 1;

/// Type-erased entry point stored in a record: reads the closure out of the
/// payload and runs it. Monomorphised per closure type by
/// [`TaskRecord::store_closure`].
type Invoke = unsafe fn(NonNull<TaskRecord>, &ExecCtx);

#[repr(align(16))]
struct Payload(#[allow(dead_code)] [MaybeUninit<u8>; INLINE_BYTES]);

/// One task instance: bookkeeping node and closure storage fused into a
/// single 128-byte, cache-line-aligned block. See the module docs for the
/// lifetime protocol.
#[repr(align(128))]
pub(crate) struct TaskRecord {
    /// Intrusive link used by the slab free list and the cross-thread
    /// reclaim stack. Never touched while the record is live.
    pub(crate) next: AtomicPtr<TaskRecord>,
    /// Reference count; see the module docs.
    refs: AtomicUsize,
    /// Number of direct children not yet completed. `taskwait` blocks on
    /// this reaching zero.
    children: AtomicUsize,
    /// Parent record; `None` for a region's root (implicit) task. The child
    /// holds one reference on the parent for as long as it lives, so the
    /// pointer is always valid.
    parent: Option<NonNull<TaskRecord>>,
    /// Innermost enclosing taskgroup at creation time, if any: a raw
    /// pointer into the pooled group descriptors ([`crate::group`]), kept
    /// alive by this task's own membership (joined at spawn, left at
    /// completion — the waiter cannot recycle the descriptor before the
    /// leave). Only the executing thread touches the cell (copy at child
    /// spawn, take at completion).
    group: Cell<Option<NonNull<Group>>>,
    /// Dual-use slot, exploited for its **temporal exclusivity**: before
    /// dispatch it holds the closure entry point (an [`Invoke`] fn
    /// pointer, taken exactly once by the executing worker before the body
    /// runs); while the body sits at a `taskwait` it holds the waiting
    /// [`Continuation`]. The two uses can never overlap — children only
    /// exist after the body started, i.e. after the invoke pointer was
    /// taken — so a child's zero-transition waker reading this slot can
    /// only ever see null or a waiting continuation.
    invoke: AtomicPtr<u8>,
    /// The region this task belongs to: set on the root at submit time,
    /// inherited by children at init. Valid for as long as the record lives
    /// (see [`crate::region`] for the lifetime argument); null only for
    /// synthetic records in unit tests, which never execute.
    region: *const Region,
    /// Recursion depth: root = 0, children of root = 1, ...
    pub(crate) depth: u32,
    /// Index of the worker whose slab owns this record's memory, or
    /// [`HOME_BOXED`] for individually boxed records.
    pub(crate) home: u16,
    /// Tied task? Constrains what the owning worker may run at a taskwait.
    pub(crate) tied: bool,
    /// Final task? Descendants are serialised.
    pub(crate) final_: bool,
    /// Inline closure captures, or the spill box pointer.
    payload: UnsafeCell<Payload>,
}

// One record must stay a single cache-line-pair block: the whole point of
// the pooled layout is that a spawn touches exactly one node of memory.
const _: () = assert!(size_of::<TaskRecord>() == 128);
const _: () = assert!(align_of::<TaskRecord>() == 128);

// Safety: records cross threads only through queue handles (deque steals,
// the injector, cross-thread releases); the closure they carry is
// constrained `Send` where it is stored, the counters are atomics, and the
// `UnsafeCell` fields are only touched by the single thread executing (or
// destroying) the task — see the field and method contracts above.
unsafe impl Send for TaskRecord {}
unsafe impl Sync for TaskRecord {}

impl TaskRecord {
    /// Writes a fresh record into `slot` (uninitialised or recycled memory).
    ///
    /// The record starts with `refs == 1` — the queue handle for deferred
    /// tasks, the creator's handle for inline bookkeeping records — and
    /// takes one new reference on `parent`.
    ///
    /// # Safety
    /// `slot` must point to memory valid for a `TaskRecord` that is not
    /// currently in use. `parent`, if present, must be a live record.
    /// `region` applies only to roots: records with a parent inherit the
    /// parent's region and ignore the argument.
    pub(crate) unsafe fn init(
        slot: NonNull<TaskRecord>,
        parent: Option<NonNull<TaskRecord>>,
        group: Option<NonNull<Group>>,
        region: *const Region,
        home: u16,
        attrs: TaskAttrs,
    ) {
        let (depth, inherited_final, region) = match parent {
            Some(p) => {
                let p = p.as_ref();
                p.add_ref();
                (p.depth + 1, p.final_, p.region)
            }
            None => (0, false, region),
        };
        slot.as_ptr().write(TaskRecord {
            next: AtomicPtr::new(std::ptr::null_mut()),
            refs: AtomicUsize::new(1),
            children: AtomicUsize::new(0),
            parent,
            group: Cell::new(group),
            invoke: AtomicPtr::new(std::ptr::null_mut()),
            region,
            depth,
            home,
            tied: attrs.tied,
            final_: attrs.final_clause || inherited_final,
            payload: UnsafeCell::new(Payload([MaybeUninit::uninit(); INLINE_BYTES])),
        });
    }

    /// The region this record belongs to (null only for synthetic
    /// test-built records, which never execute).
    #[inline]
    pub(crate) fn region(&self) -> *const Region {
        self.region
    }

    /// Stores `f` as this record's closure: inline when it fits, spilled to
    /// one box otherwise. Returns `true` when the closure was spilled.
    ///
    /// # Safety
    /// Must be called exactly once, before the record is published to a
    /// queue; `rec` must be live and not yet executed.
    #[inline]
    pub(crate) unsafe fn store_closure<F>(rec: NonNull<TaskRecord>, f: F) -> bool
    where
        F: FnOnce(&ExecCtx) + Send,
    {
        let payload = rec.as_ref().payload.get().cast::<u8>();
        if size_of::<F>() <= INLINE_BYTES && align_of::<F>() <= INLINE_ALIGN {
            payload.cast::<F>().write(f);
            rec.as_ref().invoke.store(
                invoke_inline::<F> as *const () as usize as *mut u8,
                Ordering::Relaxed,
            );
            false
        } else {
            payload.cast::<*mut F>().write(Box::into_raw(Box::new(f)));
            rec.as_ref().invoke.store(
                invoke_spilled::<F> as *const () as usize as *mut u8,
                Ordering::Relaxed,
            );
            true
        }
    }

    /// Takes the closure entry point (at most once, before the body runs —
    /// which frees the slot for taskwait waiter registration).
    #[inline]
    pub(crate) fn take_invoke(&self) -> Option<Invoke> {
        let p = self.invoke.swap(std::ptr::null_mut(), Ordering::Relaxed);
        if p.is_null() {
            None
        } else {
            // Safety: non-null pre-dispatch content is always an `Invoke`
            // stored by `store_closure` (see the field docs).
            Some(unsafe { std::mem::transmute::<*mut u8, Invoke>(p) })
        }
    }

    /// Registers `cont` as this record's taskwait waiter. SeqCst: the
    /// store must be globally ordered against the waiter's subsequent
    /// `outstanding()` recheck and a completing child's `child_done` /
    /// `claim_waiter` pair (store-buffering would otherwise lose wakes).
    ///
    /// Only the task's own frame (one frame per record) registers, and only
    /// after the body started, so the slot is null at this point.
    #[inline]
    pub(crate) fn register_waiter(&self, cont: NonNull<Continuation>) {
        let prev = self.invoke.swap(cont.as_ptr().cast(), Ordering::SeqCst);
        debug_assert!(prev.is_null(), "taskwait waiter slot was occupied");
    }

    /// Claims the registered waiter, if any — the exclusive wake ticket.
    /// Called by the waiter itself (to unregister after a successful
    /// recheck) or by the child whose completion drove `children` to zero.
    #[inline]
    pub(crate) fn claim_waiter(&self) -> Option<NonNull<Continuation>> {
        NonNull::new(
            self.invoke
                .swap(std::ptr::null_mut(), Ordering::SeqCst)
                .cast(),
        )
    }

    /// Copies the enclosing taskgroup pointer (executing thread only).
    #[inline]
    pub(crate) fn group(&self) -> Option<NonNull<Group>> {
        self.group.get()
    }

    /// Takes the taskgroup pointer at completion (executing thread only).
    /// The caller may only dereference it while the record is still a
    /// member (i.e. before its `leave()`).
    #[inline]
    pub(crate) fn take_group(&self) -> Option<NonNull<Group>> {
        self.group.take()
    }

    /// Parent record, if any.
    #[inline]
    pub(crate) fn parent(&self) -> Option<NonNull<TaskRecord>> {
        self.parent
    }

    /// Attaches per-task dependency state (an opaque pointer to a
    /// [`crate::deps::DepBlock`]), carried in the intrusive `next` link.
    ///
    /// Sound because `next` is otherwise unused for the whole live span of
    /// a **non-root** record: the slab free list and the cross-thread
    /// reclaim stack touch it only after the final release, the deque
    /// stores records in its own buffer, and the injector (which *does*
    /// thread through `next`) carries only region roots — which never have
    /// depend clauses. While the pointer is set, the record is in the
    /// runtime's **Deferred** state machinery: held back until its
    /// release counter drains, then queued, then executed, at which point
    /// [`take_dep_state`](Self::take_dep_state) hands the block to the
    /// retire path.
    ///
    /// # Safety
    /// Executing-thread-only protocol: set once before the record is
    /// published (to a queue or to predecessor successor lists), taken
    /// once by the executing worker.
    #[inline]
    pub(crate) unsafe fn set_dep_state(&self, state: NonNull<u8>) {
        // Region roots never carry deps (their `next` belongs to the
        // injector); synthetic test records (null region) are exempt.
        debug_assert!(self.parent.is_some() || self.region.is_null());
        self.next.store(state.as_ptr().cast(), Ordering::Relaxed);
    }

    /// Detaches the dependency state attached by
    /// [`set_dep_state`](Self::set_dep_state), if any. Must only be called
    /// on records whose `next` link is governed by the dep protocol (i.e.
    /// non-root records — see `set_dep_state`).
    #[inline]
    pub(crate) fn take_dep_state(&self) -> Option<NonNull<u8>> {
        debug_assert!(self.parent.is_some() || self.region.is_null());
        NonNull::new(
            self.next
                .swap(std::ptr::null_mut(), Ordering::Relaxed)
                .cast(),
        )
    }

    /// Is the attached dependency state a tagged replay slot (bit 0 set —
    /// see [`crate::replay::tag_slot`])? Non-destructive peek, used by the
    /// divergence path to ask whether the *currently executing* task is
    /// itself one of the replayed spawns it is waiting out (its dep state
    /// stays attached until the post-execute retire). Only meaningful on
    /// records governed by the dep protocol (non-root — see
    /// [`set_dep_state`](Self::set_dep_state)).
    #[inline]
    pub(crate) fn dep_state_is_replay(&self) -> bool {
        debug_assert!(self.parent.is_some() || self.region.is_null());
        self.next.load(Ordering::Relaxed) as usize & 1 == 1
    }

    /// Adds one reference.
    #[inline]
    pub(crate) fn add_ref(&self) {
        self.refs.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops one reference and returns the count *before* the drop: `1`
    /// means the caller now owns the record and must destroy it; `2` means
    /// one handle remains (the transition the region master watches on the
    /// root).
    ///
    /// Release/Acquire mirrors `Arc`: every preceding use of the record
    /// happens-before the destroying thread proceeds.
    #[inline]
    pub(crate) fn release_ref(&self) -> usize {
        let prev = self.refs.fetch_sub(1, Ordering::Release);
        if prev == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
        }
        prev
    }

    /// Current reference count (region-master quiescence probe).
    #[inline]
    pub(crate) fn refs(&self) -> usize {
        self.refs.load(Ordering::Acquire)
    }

    /// Registers one more outstanding child (executing thread only —
    /// children are only created by the task's own body).
    #[inline]
    pub(crate) fn add_child(&self) {
        self.children.fetch_add(1, Ordering::AcqRel);
    }

    /// Marks one child complete; returns true if this was the last one.
    /// SeqCst (not AcqRel): the decrement must be globally ordered against
    /// the completing child's subsequent `claim_waiter` read and the
    /// waiter's `register_waiter`/`outstanding` pair — the classic
    /// store-buffering shape where both sides otherwise miss each other.
    #[inline]
    pub(crate) fn child_done(&self) -> bool {
        self.children.fetch_sub(1, Ordering::SeqCst) == 1
    }

    /// Outstanding direct children. SeqCst so a waiter's recheck after
    /// `register_waiter` cannot read a stale count past the registration.
    #[inline]
    pub(crate) fn outstanding(&self) -> usize {
        self.children.load(Ordering::SeqCst)
    }

    /// Is `self` a descendant of (or equal to) `anc`? Walks the parent
    /// chain; depths bound the walk. Sound because a record's parent chain
    /// is kept alive by the per-child references. (Scheduling no longer
    /// filters by lineage — waits suspend instead of nesting — so this
    /// survives only as a test predicate for the parent linkage.)
    #[cfg(test)]
    pub(crate) fn descends_from(&self, anc: &TaskRecord) -> bool {
        let mut cur = self;
        loop {
            if std::ptr::eq(cur, anc) {
                return true;
            }
            if cur.depth <= anc.depth {
                return false;
            }
            match cur.parent {
                // Safety: `cur` holds a reference on its parent.
                Some(p) => cur = unsafe { &*p.as_ptr() },
                None => return false,
            }
        }
    }
}

unsafe fn invoke_inline<F: FnOnce(&ExecCtx) + Send>(rec: NonNull<TaskRecord>, ec: &ExecCtx) {
    let f = rec.as_ref().payload.get().cast::<F>().read();
    // Skip-dispatch (cancelled region): the closure is read out and
    // dropped — captures release their resources — but the body never
    // runs. Bookkeeping stays with the caller either way.
    if ec.skip() {
        drop(f);
        return;
    }
    f(ec);
}

unsafe fn invoke_spilled<F: FnOnce(&ExecCtx) + Send>(rec: NonNull<TaskRecord>, ec: &ExecCtx) {
    let boxed = rec.as_ref().payload.get().cast::<*mut F>().read();
    let f = *Box::from_raw(boxed);
    if ec.skip() {
        drop(f);
        return;
    }
    f(ec);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boxed record helper: builds a chain without a slab.
    fn boxed(parent: Option<NonNull<TaskRecord>>, attrs: TaskAttrs) -> NonNull<TaskRecord> {
        let slot = NonNull::new(Box::into_raw(Box::new(MaybeUninit::<TaskRecord>::uninit())))
            .unwrap()
            .cast::<TaskRecord>();
        unsafe { TaskRecord::init(slot, parent, None, std::ptr::null(), HOME_BOXED, attrs) };
        slot
    }

    fn free(rec: NonNull<TaskRecord>) {
        unsafe {
            drop(Box::from_raw(
                rec.as_ptr().cast::<MaybeUninit<TaskRecord>>(),
            ))
        };
    }

    /// Releases the creator handle of every listed record (leaves first),
    /// cascading parent-reference releases exactly like the runtime does.
    fn free_chain(records: Vec<NonNull<TaskRecord>>) {
        for created in records {
            let mut cur = Some(created);
            while let Some(rec) = cur {
                let r = unsafe { rec.as_ref() };
                if r.release_ref() == 1 {
                    cur = r.parent();
                    free(rec);
                } else {
                    cur = None;
                }
            }
        }
    }

    #[test]
    fn default_attrs_are_tied_deferred() {
        let a = TaskAttrs::default();
        assert!(a.tied);
        assert!(a.if_clause);
        assert!(!a.final_clause);
    }

    #[test]
    fn attr_builders() {
        let a = TaskAttrs::untied().with_if(false).with_final(true);
        assert!(!a.tied);
        assert!(!a.if_clause);
        assert!(a.final_clause);
        let b = TaskAttrs::tied().with_tied(false);
        assert!(!b.tied);
    }

    #[test]
    fn record_depth_and_parentage() {
        let attrs = TaskAttrs::default();
        let root = boxed(None, attrs);
        let c1 = boxed(Some(root), attrs);
        let c2 = boxed(Some(c1), attrs);
        unsafe {
            assert_eq!(root.as_ref().depth, 0);
            assert_eq!(c1.as_ref().depth, 1);
            assert_eq!(c2.as_ref().depth, 2);
            assert!(c2.as_ref().descends_from(c1.as_ref()));
            assert!(c2.as_ref().descends_from(root.as_ref()));
            assert!(c1.as_ref().descends_from(root.as_ref()));
            assert!(!c1.as_ref().descends_from(c2.as_ref()));
            assert!(root.as_ref().descends_from(root.as_ref()));
        }
        free_chain(vec![c2, c1, root]);
    }

    #[test]
    fn sibling_is_not_descendant() {
        let attrs = TaskAttrs::default();
        let root = boxed(None, attrs);
        let a = boxed(Some(root), attrs);
        let b = boxed(Some(root), attrs);
        unsafe {
            assert!(!a.as_ref().descends_from(b.as_ref()));
            assert!(!b.as_ref().descends_from(a.as_ref()));
        }
        free_chain(vec![a, b, root]);
    }

    #[test]
    fn final_propagates() {
        let root = boxed(None, TaskAttrs::default());
        let f = boxed(Some(root), TaskAttrs::default().with_final(true));
        let child_of_final = boxed(Some(f), TaskAttrs::default());
        unsafe {
            assert!(f.as_ref().final_);
            assert!(child_of_final.as_ref().final_);
        }
        free_chain(vec![child_of_final, f, root]);
    }

    #[test]
    fn child_counting() {
        let root = boxed(None, TaskAttrs::default());
        let r = unsafe { root.as_ref() };
        r.add_child();
        r.add_child();
        assert_eq!(r.outstanding(), 2);
        assert!(!r.child_done());
        assert!(r.child_done());
        assert_eq!(r.outstanding(), 0);
        free_chain(vec![root]);
    }

    #[test]
    fn refcount_keeps_parent_alive_until_children_die() {
        let attrs = TaskAttrs::default();
        let root = boxed(None, attrs);
        let child = boxed(Some(root), attrs);
        let r = unsafe { root.as_ref() };
        // Creator handle + child's handle.
        assert_eq!(r.refs(), 2);
        assert_eq!(r.release_ref(), 2); // creator handle gone, child still holds
        assert_eq!(unsafe { child.as_ref() }.release_ref(), 1);
        free(child);
        assert_eq!(r.release_ref(), 1); // child's parent-ref, released by cascade
        free(root);
    }

    #[test]
    fn small_closure_stays_inline_large_spills() {
        let rec = boxed(None, TaskAttrs::default());
        let small = [7u64; 2];
        let spilled = unsafe {
            TaskRecord::store_closure(rec, move |_: &ExecCtx| {
                std::hint::black_box(small);
            })
        };
        assert!(!spilled, "2-word capture must stay inline");
        // Consume the stored closure so nothing leaks: reading it back out
        // requires an ExecCtx, which needs a worker; instead just forget it
        // (Copy captures have no drop obligations) and reuse the record.
        let _ = unsafe { rec.as_ref() }.take_invoke();

        let big = [7u64; 32];
        let spilled = unsafe {
            TaskRecord::store_closure(rec, move |_: &ExecCtx| {
                std::hint::black_box(big);
            })
        };
        assert!(spilled, "32-word capture must spill");
        // Reclaim the spill box (closure is Copy-captured, no destructor).
        let payload = unsafe { rec.as_ref().payload.get().cast::<*mut u8>().read() };
        assert!(!payload.is_null());
        let _ = unsafe { rec.as_ref() }.take_invoke();
        unsafe {
            drop(Box::from_raw(payload.cast::<[u64; 32]>()));
        }
        assert_eq!(unsafe { rec.as_ref() }.release_ref(), 1);
        free(rec);
    }
}
