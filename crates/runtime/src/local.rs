//! Worker-local storage: the `threadprivate` idiom.
//!
//! The paper's NQueens kernel avoids a contended `critical` section by
//! accumulating solution counts in `threadprivate` variables, reduced once
//! at the end of the parallel region. [`WorkerLocal`] and [`WorkerCounter`]
//! provide that pattern: one padded slot per worker, indexed by
//! [`Scope::worker_id`](crate::Scope::worker_id).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::scope::Scope;

/// Pads a value to its own cache line pair to prevent false sharing between
/// adjacent workers' slots.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct CacheAligned<T>(pub T);

/// One value of `T` per worker. `T` needs interior mutability (atomics, a
/// mutex, ...) to be written through the shared reference this hands out.
pub struct WorkerLocal<T> {
    slots: Box<[CacheAligned<T>]>,
}

impl<T: Default> WorkerLocal<T> {
    /// One default-initialised slot per team member.
    pub fn new(num_workers: usize) -> Self {
        WorkerLocal {
            slots: (0..num_workers)
                .map(|_| CacheAligned(T::default()))
                .collect(),
        }
    }
}

impl<T> WorkerLocal<T> {
    /// Builds each slot from its worker index.
    pub fn from_fn(num_workers: usize, mut f: impl FnMut(usize) -> T) -> Self {
        WorkerLocal {
            slots: (0..num_workers).map(|i| CacheAligned(f(i))).collect(),
        }
    }

    /// The current worker's slot.
    #[inline]
    pub fn get(&self, scope: &Scope<'_>) -> &T {
        &self.slots[scope.worker_id()].0
    }

    /// A specific worker's slot (for the reduction at region end).
    #[inline]
    pub fn get_index(&self, index: usize) -> &T {
        &self.slots[index].0
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for a zero-worker team (never happens in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates all slots.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().map(|s| &s.0)
    }
}

/// A per-worker `u64` accumulator: uncontended relaxed adds on the hot path,
/// a full sum at the end. The `threadprivate` + end-of-region reduction
/// idiom from the paper's NQueens discussion.
pub struct WorkerCounter {
    inner: WorkerLocal<AtomicU64>,
}

impl WorkerCounter {
    /// Zeroed counter bank for an `n`-worker team.
    pub fn new(num_workers: usize) -> Self {
        WorkerCounter {
            inner: WorkerLocal::new(num_workers),
        }
    }

    /// Adds to the current worker's slot. Uncontended by construction, so
    /// this is as cheap as an ordinary add plus a `lock`-free store.
    #[inline]
    pub fn add(&self, scope: &Scope<'_>, v: u64) {
        self.inner.get(scope).fetch_add(v, Ordering::Relaxed);
    }

    /// Increments the current worker's slot.
    #[inline]
    pub fn incr(&self, scope: &Scope<'_>) {
        self.add(scope, 1);
    }

    /// Reduces all slots.
    pub fn sum(&self) -> u64 {
        self.inner.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Resets all slots to zero.
    pub fn reset(&self) {
        for a in self.inner.iter() {
            a.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Runtime, RuntimeConfig};

    #[test]
    fn counter_accumulates_across_workers() {
        let rt = Runtime::new(RuntimeConfig::new(4));
        let counter = WorkerCounter::new(rt.num_threads());
        rt.parallel(|s| {
            for _ in 0..100 {
                s.spawn(|s| {
                    counter.incr(s);
                });
            }
            s.taskwait();
        });
        assert_eq!(counter.sum(), 100);
        counter.reset();
        assert_eq!(counter.sum(), 0);
    }

    #[test]
    fn worker_local_slots_are_distinct() {
        let wl = WorkerLocal::<AtomicU64>::new(3);
        wl.get_index(0).store(1, Ordering::Relaxed);
        wl.get_index(2).store(5, Ordering::Relaxed);
        let values: Vec<u64> = wl.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        assert_eq!(values, vec![1, 0, 5]);
        assert_eq!(wl.len(), 3);
        assert!(!wl.is_empty());
    }

    #[test]
    fn from_fn_uses_index() {
        let wl = WorkerLocal::from_fn(4, |i| i * 10);
        assert_eq!(*wl.get_index(3), 30);
    }

    #[test]
    fn alignment_prevents_false_sharing() {
        assert!(std::mem::align_of::<CacheAligned<u8>>() >= 128);
        let wl = WorkerLocal::<AtomicU64>::new(2);
        let a = wl.get_index(0) as *const _ as usize;
        let b = wl.get_index(1) as *const _ as usize;
        assert!(b - a >= 128);
    }
}
