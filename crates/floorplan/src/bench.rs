//! `Benchmark` wiring for Floorplan.

use bots_inputs::InputClass;
use bots_profile::{CountingProbe, NullProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{
    fnv1a_u64, BenchMeta, Benchmark, CutoffMode, RunOutput, Tiedness, Verification, VersionSpec,
};

use crate::model::generate_cells;
use crate::search::{search_parallel, search_serial, FloorplanMode};

/// Cell count per class (the paper's medium uses 20 shapes; this
/// generator's instances branch harder, so the counts are scaled to keep
/// medium in the seconds range).
pub fn cells_for(class: InputClass) -> usize {
    class.pick([7, 12, 14, 15])
}

/// Cut-off depth per class.
pub fn cutoff_for(class: InputClass) -> u32 {
    class.pick([3, 4, 5, 5])
}

const SEED: u64 = 0xF100_4711;

/// Floorplan as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct FloorplanBench;

impl Benchmark for FloorplanBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "Floorplan",
            origin: "AKM",
            domain: "Optimization",
            structure: "At each node",
            task_directives: 1,
            tasks_inside: "single",
            nested_tasks: true,
            app_cutoff: "depth-based",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        format!("{} cells", cells_for(class))
    }

    fn versions(&self) -> Vec<VersionSpec> {
        VersionSpec::matrix(false)
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let cells = generate_cells(cells_for(class), SEED);
        let r = search_serial(&NullProbe, &cells);
        RunOutput::with_work(
            fnv1a_u64(r.min_area as u64),
            r.nodes,
            format!("min area {} in {} nodes", r.min_area, r.nodes),
        )
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let cells = generate_cells(cells_for(class), SEED);
        let mode = match version.cutoff {
            CutoffMode::NoCutoff => FloorplanMode::NoCutoff,
            CutoffMode::IfClause => FloorplanMode::IfClause,
            CutoffMode::Manual => FloorplanMode::Manual,
        };
        let untied = version.tiedness == Tiedness::Untied;
        let r = search_parallel(rt, &cells, mode, untied, cutoff_for(class));
        // The checksum covers the deterministic optimum; the node count is
        // the work metric (indeterministic under parallel pruning — the
        // paper's point).
        RunOutput::with_work(
            fnv1a_u64(r.min_area as u64),
            r.nodes,
            format!("min area {} in {} nodes", r.min_area, r.nodes),
        )
    }

    fn verify(&self, _class: InputClass, _output: &RunOutput) -> Verification {
        // Branch and bound always finds the optimum: compare the minimum
        // area against the serial run.
        Verification::AgainstSerial
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let cells = generate_cells(cells_for(class), SEED);
        let p = CountingProbe::new();
        search_serial(&p, &cells);
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3: "floorplan (manual-untied)".
        VersionSpec::default()
            .cutoff(CutoffMode::Manual)
            .tied(Tiedness::Untied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_suite::runner;

    #[test]
    fn all_versions_verify_on_test_class() {
        let b = FloorplanBench;
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            runner::verify(&b, InputClass::Test, &out).unwrap();
        }
    }

    #[test]
    fn characterization_has_fat_environments() {
        let c = FloorplanBench.characterize(InputClass::Test);
        // Floorplan's signature: kilobytes captured per task (paper ≈5 KB).
        let env_per_task = c.env_bytes as f64 / c.tasks as f64;
        assert!(env_per_task > 1000.0, "env bytes/task = {env_per_task}");
    }

    #[test]
    fn work_metric_is_reported() {
        let out = FloorplanBench.run_serial(InputClass::Test);
        assert!(out.work.unwrap() > 0);
    }
}
