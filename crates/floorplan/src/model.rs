//! The floorplanning model: a fixed grid board, cells with alternative
//! shapes, and candidate-position enumeration.
//!
//! Shape of the original AKM kernel: cells are placed one at a time onto a
//! 64×64 grid; each cell offers a handful of alternative dimensions; the
//! candidate positions of a cell are derived from the cell placed before it
//! (abutting it below or to the right, sliding along the shared edge); the
//! objective is the minimum bounding-box area; branches whose partial area
//! already reaches the best-known area are pruned. Because cells carry
//! their whole board state into each branch, the per-task captured
//! environment is kilobytes — the largest in the suite (Table II).

use bots_inputs::Rng;

/// Board rows (as in the original kernel).
pub const ROWS: usize = 64;
/// Board columns.
pub const COLS: usize = 64;

/// Occupancy grid, one byte per board unit (the per-task state copy).
pub type Board = Box<[u8; ROWS * COLS]>;

/// Fresh empty board.
pub fn empty_board() -> Board {
    vec![0u8; ROWS * COLS]
        .into_boxed_slice()
        .try_into()
        .expect("sized")
}

/// One placement alternative: height (rows) × width (cols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Rows the shape spans.
    pub h: u8,
    /// Columns the shape spans.
    pub w: u8,
}

/// A cell to place: a small set of alternative shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Alternative shapes (1..=4 of them).
    pub alts: Vec<Shape>,
}

/// A committed placement (inclusive coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Place {
    /// Top row.
    pub top: u8,
    /// Bottom row.
    pub bot: u8,
    /// Left column.
    pub lhs: u8,
    /// Right column.
    pub rhs: u8,
}

impl Place {
    /// Area of the bounding box that contains this placement and `other`.
    pub fn union_area(placements: &[Place]) -> u32 {
        let bot = placements.iter().map(|p| p.bot).max().unwrap_or(0) as u32;
        let rhs = placements.iter().map(|p| p.rhs).max().unwrap_or(0) as u32;
        (bot + 1) * (rhs + 1)
    }
}

/// Deterministic problem instance: `count` cells with 1-4 alternative
/// shapes each, dimensions in `[1, 8]`.
pub fn generate_cells(count: usize, seed: u64) -> Vec<Cell> {
    let root = Rng::new(seed);
    (0..count)
        .map(|i| {
            let mut rng = root.derive(i as u64);
            let nalts = 1 + rng.below(4) as usize;
            let alts = (0..nalts)
                .map(|_| {
                    let h = 1 + rng.below(8) as u8;
                    let w = 1 + rng.below(8) as u8;
                    Shape { h, w }
                })
                .collect();
            Cell { alts }
        })
        .collect()
}

/// Candidate top-left positions for a `shape` placed relative to the
/// previous cell's placement `prev`: abutting below (sliding horizontally
/// along `prev`'s span) or abutting right (sliding vertically).
pub fn candidate_positions(prev: &Place, shape: Shape, out: &mut Vec<(u8, u8)>) {
    out.clear();
    let h = shape.h as i32;
    let w = shape.w as i32;
    // Below prev: top row fixed at prev.bot+1.
    let top = prev.bot as i32 + 1;
    if top + h - 1 < ROWS as i32 {
        let lo = (prev.lhs as i32 - w + 1).max(0);
        let hi = (prev.rhs as i32).min(COLS as i32 - w);
        for col in lo..=hi {
            out.push((top as u8, col as u8));
        }
    }
    // Right of prev: left column fixed at prev.rhs+1.
    let lhs = prev.rhs as i32 + 1;
    if lhs + w - 1 < COLS as i32 {
        let lo = (prev.top as i32 - h + 1).max(0);
        let hi = (prev.bot as i32).min(ROWS as i32 - h);
        for row in lo..=hi {
            out.push((row as u8, lhs as u8));
        }
    }
}

/// Tries to mark `shape` at `(top, lhs)` on the board; returns the
/// placement if the region was free, leaving the board untouched on
/// failure. `ops` counts the grid cells examined (for instrumentation).
pub fn lay_down(board: &mut Board, top: u8, lhs: u8, shape: Shape, ops: &mut u64) -> Option<Place> {
    let (t, l) = (top as usize, lhs as usize);
    let (h, w) = (shape.h as usize, shape.w as usize);
    debug_assert!(t + h <= ROWS && l + w <= COLS);
    for r in t..t + h {
        for c in l..l + w {
            *ops += 1;
            if board[r * COLS + c] != 0 {
                // Roll back what we marked so far.
                for rr in t..=r {
                    let cend = if rr == r { c } else { l + w };
                    for cc in l..cend {
                        board[rr * COLS + cc] = 0;
                    }
                }
                return None;
            }
            board[r * COLS + c] = 1;
        }
    }
    Some(Place {
        top,
        bot: (t + h - 1) as u8,
        lhs,
        rhs: (l + w - 1) as u8,
    })
}

/// Clears a placement from the board (undo for the serial recursion).
pub fn lift(board: &mut Board, p: Place) {
    for r in p.top as usize..=p.bot as usize {
        for c in p.lhs as usize..=p.rhs as usize {
            board[r * COLS + c] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = generate_cells(10, 42);
        let b = generate_cells(10, 42);
        assert_eq!(a, b);
        for cell in &a {
            assert!((1..=4).contains(&cell.alts.len()));
            for s in &cell.alts {
                assert!((1..=8).contains(&s.h) && (1..=8).contains(&s.w));
            }
        }
    }

    #[test]
    fn lay_down_and_lift_roundtrip() {
        let mut board = empty_board();
        let mut ops = 0;
        let shape = Shape { h: 3, w: 4 };
        let p = lay_down(&mut board, 2, 5, shape, &mut ops).unwrap();
        assert_eq!(
            p,
            Place {
                top: 2,
                bot: 4,
                lhs: 5,
                rhs: 8
            }
        );
        assert_eq!(board.iter().filter(|&&b| b != 0).count(), 12);
        lift(&mut board, p);
        assert!(board.iter().all(|&b| b == 0));
    }

    #[test]
    fn lay_down_detects_overlap_and_rolls_back() {
        let mut board = empty_board();
        let mut ops = 0;
        let s = Shape { h: 2, w: 2 };
        let p1 = lay_down(&mut board, 0, 0, s, &mut ops).unwrap();
        assert!(lay_down(&mut board, 1, 1, s, &mut ops).is_none());
        // Rollback must leave only the first placement.
        assert_eq!(board.iter().filter(|&&b| b != 0).count(), 4);
        lift(&mut board, p1);
        assert!(board.iter().all(|&b| b == 0));
    }

    #[test]
    fn candidates_abut_previous_cell() {
        let prev = Place {
            top: 0,
            bot: 3,
            lhs: 0,
            rhs: 3,
        };
        let mut cands = Vec::new();
        candidate_positions(&prev, Shape { h: 2, w: 2 }, &mut cands);
        assert!(!cands.is_empty());
        for &(r, c) in &cands {
            let below = r == prev.bot + 1 && c <= prev.rhs + 1;
            let right = c == prev.rhs + 1;
            assert!(below || right, "({r},{c}) does not abut {prev:?}");
        }
    }

    #[test]
    fn union_area_of_placements() {
        let ps = [
            Place {
                top: 0,
                bot: 3,
                lhs: 0,
                rhs: 3,
            },
            Place {
                top: 4,
                bot: 5,
                lhs: 0,
                rhs: 7,
            },
        ];
        assert_eq!(Place::union_area(&ps), 6 * 8);
    }
}
