//! The branch-and-bound search, serial (deterministic) and parallel.
//!
//! The pruning races against the evolving best-known area, so the *number
//! of nodes visited* by a parallel run is indeterministic; the paper's fix
//! is to report nodes and measure speed-up in nodes per second
//! (§III-B). The minimum area itself is deterministic — branch and bound
//! always finds the optimum — and that is what verification compares.

use std::sync::atomic::{AtomicU32, Ordering};

use bots_profile::Probe;
use bots_runtime::{Runtime, Scope, TaskAttrs, WorkerCounter};

use crate::model::{
    candidate_positions, empty_board, lay_down, lift, Board, Cell, Place, COLS, ROWS,
};

/// Search outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchResult {
    /// Minimum bounding-box area over all complete placements (`u32::MAX`
    /// when no placement fits).
    pub min_area: u32,
    /// Nodes visited (placement attempts), the work metric.
    pub nodes: u64,
}

/// Serial branch and bound (deterministic DFS).
pub fn search_serial<P: Probe>(p: &P, cells: &[Cell]) -> SearchResult {
    let mut board = empty_board();
    let mut placements: Vec<Place> = Vec::with_capacity(cells.len());
    let mut best = u32::MAX;
    let mut nodes = 0u64;
    // Root: first cell at the origin, each alternative shape.
    if cells.is_empty() {
        return SearchResult {
            min_area: 0,
            nodes: 0,
        };
    }
    for &shape in &cells[0].alts {
        let mut ops = 0u64;
        if let Some(place) = lay_down(&mut board, 0, 0, shape, &mut ops) {
            p.ops(ops);
            nodes += 1;
            placements.push(place);
            serial_node(
                p,
                cells,
                1,
                &mut board,
                &mut placements,
                &mut best,
                &mut nodes,
            );
            placements.pop();
            lift(&mut board, place);
        }
    }
    SearchResult {
        min_area: best,
        nodes,
    }
}

fn serial_node<P: Probe>(
    p: &P,
    cells: &[Cell],
    id: usize,
    board: &mut Board,
    placements: &mut Vec<Place>,
    best: &mut u32,
    nodes: &mut u64,
) {
    if id == cells.len() {
        let area = Place::union_area(placements);
        if area < *best {
            *best = area;
            p.write_shared(1); // best-so-far is shared state
        }
        return;
    }
    let prev = *placements.last().expect("cell 0 placed");
    let mut cands = Vec::new();
    let mut spawned = false;
    for &shape in &cells[id].alts {
        candidate_positions(&prev, shape, &mut cands);
        for &(top, lhs) in &cands {
            let mut ops = 0u64;
            if let Some(place) = lay_down(board, top, lhs, shape, &mut ops) {
                p.ops(ops);
                *nodes += 1;
                placements.push(place);
                let area = Place::union_area(placements);
                p.ops(placements.len() as u64);
                if area < *best {
                    // Each branch is a potential task copying board + state.
                    p.task((ROWS * COLS + 4 * placements.len() + 8) as u64);
                    p.write_env((ROWS * COLS) as u64 / 8 + placements.len() as u64);
                    spawned = true;
                    serial_node(p, cells, id + 1, board, placements, best, nodes);
                }
                placements.pop();
                lift(board, place);
            } else {
                p.ops(ops);
            }
        }
    }
    if spawned {
        p.taskwait();
    }
}

/// Cut-off style for the parallel search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorplanMode {
    /// Task per branch, unbounded.
    NoCutoff,
    /// `if(depth < cutoff)` clause.
    IfClause,
    /// Serial descent below the cut-off depth.
    Manual,
}

/// Parallel branch and bound. The best-so-far lives in an atomic minimum;
/// node counts accumulate in per-worker counters.
pub fn search_parallel(
    rt: &Runtime,
    cells: &[Cell],
    mode: FloorplanMode,
    untied: bool,
    cutoff: u32,
) -> SearchResult {
    if cells.is_empty() {
        return SearchResult {
            min_area: 0,
            nodes: 0,
        };
    }
    let attrs = TaskAttrs::default().with_tied(!untied);
    let best = AtomicU32::new(u32::MAX);
    let nodes = WorkerCounter::new(rt.num_threads());
    rt.parallel(|s| {
        let ctx = Ctx {
            cells,
            best: &best,
            nodes: &nodes,
            mode,
            attrs,
            cutoff,
        };
        s.taskgroup(|s| {
            for &shape in &cells[0].alts {
                let ctx = &ctx;
                s.task(move |s| {
                    let mut board = empty_board();
                    let mut ops = 0u64;
                    if let Some(place) = lay_down(&mut board, 0, 0, shape, &mut ops) {
                        ctx.nodes.incr(s);
                        let placements = vec![place];
                        parallel_node(s, ctx, 1, board, placements);
                    }
                })
                .with_attrs(attrs)
                .spawn();
            }
        });
    });
    SearchResult {
        min_area: best.load(Ordering::Relaxed),
        nodes: nodes.sum(),
    }
}

struct Ctx<'a> {
    cells: &'a [Cell],
    best: &'a AtomicU32,
    nodes: &'a WorkerCounter,
    mode: FloorplanMode,
    attrs: TaskAttrs,
    cutoff: u32,
}

fn parallel_node(s: &Scope<'_>, ctx: &Ctx<'_>, id: usize, board: Board, placements: Vec<Place>) {
    if id == ctx.cells.len() {
        let area = Place::union_area(&placements);
        ctx.best.fetch_min(area, Ordering::Relaxed);
        return;
    }
    let depth = id as u32;
    if ctx.mode == FloorplanMode::Manual && depth >= ctx.cutoff {
        // Serial descent: work on the owned state in place.
        let mut board = board;
        let mut placements = placements;
        serial_descent(s, ctx, id, &mut board, &mut placements);
        return;
    }
    let prev = *placements.last().expect("cell 0 placed");
    let mut cands = Vec::new();
    s.taskgroup(|s| {
        let mut board = board;
        for &shape in &ctx.cells[id].alts {
            candidate_positions(&prev, shape, &mut cands);
            for &(top, lhs) in &cands {
                let mut ops = 0u64;
                if let Some(place) = lay_down(&mut board, top, lhs, shape, &mut ops) {
                    ctx.nodes.incr(s);
                    let mut child_placements = placements.clone();
                    child_placements.push(place);
                    let area = Place::union_area(&child_placements);
                    if area < ctx.best.load(Ordering::Relaxed) {
                        // Copy the whole state into the child task — the
                        // kernel's defining cost (≈5 KB captured per task).
                        let child_board: Board = board.clone();
                        let builder = s
                            .task(move |s| {
                                parallel_node(s, ctx, id + 1, child_board, child_placements);
                            })
                            .with_attrs(ctx.attrs);
                        match ctx.mode {
                            FloorplanMode::IfClause => {
                                builder.if_clause(depth < ctx.cutoff).spawn()
                            }
                            _ => builder.spawn(),
                        }
                    }
                    lift(&mut board, place);
                }
            }
        }
    });
}

fn serial_descent(
    s: &Scope<'_>,
    ctx: &Ctx<'_>,
    id: usize,
    board: &mut Board,
    placements: &mut Vec<Place>,
) {
    if id == ctx.cells.len() {
        let area = Place::union_area(placements);
        ctx.best.fetch_min(area, Ordering::Relaxed);
        return;
    }
    let prev = *placements.last().expect("cell 0 placed");
    let mut cands = Vec::new();
    for &shape in &ctx.cells[id].alts {
        candidate_positions(&prev, shape, &mut cands);
        for &(top, lhs) in &cands {
            let mut ops = 0u64;
            if let Some(place) = lay_down(board, top, lhs, shape, &mut ops) {
                ctx.nodes.incr(s);
                placements.push(place);
                let area = Place::union_area(placements);
                if area < ctx.best.load(Ordering::Relaxed) {
                    serial_descent(s, ctx, id + 1, board, placements);
                }
                placements.pop();
                lift(board, place);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::generate_cells;
    use bots_profile::NullProbe;

    #[test]
    fn serial_is_deterministic() {
        let cells = generate_cells(7, 3);
        let a = search_serial(&NullProbe, &cells);
        let b = search_serial(&NullProbe, &cells);
        assert_eq!(a, b);
        assert!(a.min_area > 0 && a.min_area < (ROWS * COLS) as u32);
        assert!(a.nodes > 0);
    }

    #[test]
    fn parallel_finds_same_optimum_all_modes() {
        let cells = generate_cells(7, 3);
        let want = search_serial(&NullProbe, &cells).min_area;
        let rt = Runtime::with_threads(4);
        for mode in [
            FloorplanMode::NoCutoff,
            FloorplanMode::IfClause,
            FloorplanMode::Manual,
        ] {
            for untied in [false, true] {
                let got = search_parallel(&rt, &cells, mode, untied, 3);
                assert_eq!(got.min_area, want, "mode={mode:?} untied={untied}");
                assert!(got.nodes > 0);
            }
        }
    }

    #[test]
    fn single_thread_parallel_is_deterministic() {
        // One worker explores in a fixed (LIFO) order, so repeated runs
        // visit exactly the same nodes — even though that order differs
        // from the serial DFS and so may prune differently.
        let cells = generate_cells(6, 9);
        let serial = search_serial(&NullProbe, &cells);
        let rt = Runtime::with_threads(1);
        let a = search_parallel(&rt, &cells, FloorplanMode::Manual, false, 0);
        let b = search_parallel(&rt, &cells, FloorplanMode::Manual, false, 0);
        assert_eq!(a.min_area, serial.min_area);
        assert_eq!(a.nodes, b.nodes, "same order ⇒ same node count");
    }

    #[test]
    fn pruning_reduces_work() {
        // The serial search visits fewer nodes than exhaustive enumeration;
        // sanity-check pruning actually bites by comparing two sizes.
        let small = search_serial(&NullProbe, &generate_cells(5, 1));
        let bigger = search_serial(&NullProbe, &generate_cells(7, 1));
        assert!(bigger.nodes > small.nodes);
    }

    #[test]
    fn empty_input() {
        let r = search_serial(&NullProbe, &[]);
        assert_eq!(r.min_area, 0);
        let rt = Runtime::with_threads(2);
        let rp = search_parallel(&rt, &[], FloorplanMode::NoCutoff, false, 0);
        assert_eq!(rp.min_area, 0);
    }
}
