//! # bots-floorplan — the BOTS Floorplan kernel
//!
//! Optimal floorplanning by branch and bound: place cells with alternative
//! shapes on a 64×64 grid, minimising the bounding-box area, pruning
//! branches that cannot beat the best-known area. Each branch task carries
//! a copy of the whole board state — the biggest captured environment in
//! the suite — and the aggressive pruning makes the search tree heavily
//! unbalanced and the parallel node count indeterministic, which is why
//! the suite measures this kernel in **nodes per second** (§III-B).
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_floorplan::{generate_cells, search_parallel, search_serial, FloorplanMode};
//!
//! let cells = generate_cells(6, 42);
//! let serial = search_serial(&bots_profile::NullProbe, &cells);
//! let rt = Runtime::with_threads(2);
//! let par = search_parallel(&rt, &cells, FloorplanMode::Manual, false, 3);
//! assert_eq!(par.min_area, serial.min_area); // optimum is deterministic
//! ```
#![warn(missing_docs)]

mod bench;
mod model;
mod search;

pub use bench::{cells_for, cutoff_for, FloorplanBench};
pub use model::{generate_cells, Cell, Place, Shape, COLS, ROWS};
pub use search::{search_parallel, search_serial, FloorplanMode, SearchResult};
