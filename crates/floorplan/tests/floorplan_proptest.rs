//! Property tests for Floorplan: the optimum must be invariant across
//! modes, team sizes and repeated runs; areas must be physically plausible.

use bots_floorplan::{generate_cells, search_parallel, search_serial, FloorplanMode};
use bots_profile::NullProbe;
use bots_runtime::Runtime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn optimum_is_invariant(
        count in 2usize..6,
        seed in any::<u64>(),
        threads in 1usize..5,
        mode_pick in 0u8..3,
        untied in any::<bool>(),
        cutoff in 0u32..4,
    ) {
        let cells = generate_cells(count, seed);
        let serial = search_serial(&NullProbe, &cells);
        let mode = match mode_pick {
            0 => FloorplanMode::NoCutoff,
            1 => FloorplanMode::IfClause,
            _ => FloorplanMode::Manual,
        };
        let rt = Runtime::with_threads(threads);
        let par = search_parallel(&rt, &cells, mode, untied, cutoff);
        prop_assert_eq!(par.min_area, serial.min_area);
    }

    #[test]
    fn optimum_area_bounds(count in 1usize..6, seed in any::<u64>()) {
        let cells = generate_cells(count, seed);
        let r = search_serial(&NullProbe, &cells);
        if r.min_area != u32::MAX {
            // At least the total cell area must fit inside the best
            // bounding box (no overlaps allowed).
            let min_cells_area: u32 = cells
                .iter()
                .map(|c| c.alts.iter().map(|s| s.h as u32 * s.w as u32).min().unwrap())
                .sum();
            prop_assert!(r.min_area >= min_cells_area,
                "bounding box {} below total cell area {}", r.min_area, min_cells_area);
            prop_assert!(r.min_area <= 64 * 64);
        }
    }
}
