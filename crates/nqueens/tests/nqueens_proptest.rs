//! Property tests for NQueens: every mode/accumulator/cut-off/team-size
//! combination must produce the known solution count.

use bots_nqueens::{count_parallel, count_solutions, Accumulator, QueensMode, SOLUTIONS};
use bots_runtime::Runtime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn serial_matches_known_counts(n in 4usize..10) {
        prop_assert_eq!(count_solutions(n), SOLUTIONS[n]);
    }

    #[test]
    fn parallel_matches_for_any_configuration(
        n in 5usize..10,
        threads in 1usize..6,
        cutoff in 0u32..6,
        mode_pick in 0u8..3,
        untied in any::<bool>(),
        atomic in any::<bool>(),
    ) {
        let mode = match mode_pick {
            0 => QueensMode::NoCutoff,
            1 => QueensMode::IfClause,
            _ => QueensMode::Manual,
        };
        let acc = if atomic { Accumulator::Atomic } else { Accumulator::WorkerLocal };
        let rt = Runtime::with_threads(threads);
        let got = count_parallel(&rt, n, mode, untied, cutoff, acc);
        prop_assert_eq!(got, SOLUTIONS[n],
            "n={} mode={:?} untied={} cutoff={} acc={:?} threads={}",
            n, mode, untied, cutoff, acc, threads);
    }
}
