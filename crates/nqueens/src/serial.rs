//! Serial n-queens: counts **all** solutions.
//!
//! Counting every solution (rather than stopping at the first) is the
//! paper's determinism fix for this kernel: "this guarantees that the
//! application has always the same computational load" (§III-B).

use bots_profile::Probe;

use crate::board::{safe, safe_ops, Board};

/// Counts all solutions of the `n`-queens problem.
pub fn count_solutions(n: usize) -> u64 {
    let mut board: Board = Vec::with_capacity(n);
    go(n, &mut board)
}

fn go(n: usize, board: &mut Board) -> u64 {
    if board.len() == n {
        return 1;
    }
    let mut total = 0;
    for col in 0..n as u8 {
        if safe(board, col) {
            board.push(col);
            total += go(n, board);
            board.pop();
        }
    }
    total
}

/// Instrumented recursion emitting the event stream of the no-cutoff task
/// version: a task per valid placement, which copies the board prefix into
/// its captured environment; a taskwait per node that spawned children.
pub fn count_solutions_profiled<P: Probe>(p: &P, n: usize) -> u64 {
    let mut board: Board = Vec::with_capacity(n);
    go_profiled(p, n, &mut board)
}

fn go_profiled<P: Probe>(p: &P, n: usize, board: &mut Board) -> u64 {
    if board.len() == n {
        // Solution found: bump the (threadprivate) counter.
        p.write_private(1);
        return 1;
    }
    let row = board.len();
    let mut total = 0;
    let mut spawned = 0u32;
    for col in 0..n as u8 {
        p.ops(safe_ops(row));
        if safe(board, col) {
            // The child task captures the board prefix plus n and col.
            p.task(row as u64 + 2);
            p.write_env(row as u64 + 1);
            spawned += 1;
            board.push(col);
            total += go_profiled(p, n, board);
            board.pop();
        }
    }
    if spawned > 0 {
        p.taskwait();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::SOLUTIONS;
    use bots_profile::{CountingProbe, NullProbe};

    #[test]
    #[allow(clippy::needless_range_loop)] // `n` is both input and table key
    fn known_counts_up_to_ten() {
        for n in 1..=10 {
            assert_eq!(count_solutions(n), SOLUTIONS[n], "n={n}");
        }
    }

    #[test]
    fn profiled_count_matches() {
        assert_eq!(count_solutions_profiled(&NullProbe, 8), SOLUTIONS[8]);
    }

    #[test]
    fn profile_structure() {
        let p = CountingProbe::new();
        count_solutions_profiled(&p, 8);
        let c = p.counts();
        // Every solution writes once; 92 solutions for n=8.
        assert_eq!(c.writes_private - c.writes_env, 92);
        // There are as many tasks as valid placements; n=8 has 2056 nodes
        // excluding the root minus... sanity-bound it instead of pinning:
        assert!(c.tasks > 1000 && c.tasks < 3000, "tasks={}", c.tasks);
        assert!(c.taskwaits > 0 && c.taskwaits < c.tasks);
        assert!(c.ops > c.tasks, "safety scans dominate");
    }
}
