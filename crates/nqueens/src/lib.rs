//! # bots-nqueens — the BOTS N Queens kernel
//!
//! Counts **all** solutions of the n-queens problem with a backtracking
//! search that spawns a task per placement step; the board prefix is copied
//! into every child task. Counting all solutions (not just the first) is
//! the paper's determinism fix; accumulating them in per-worker counters
//! instead of a `critical` section is its contention fix — both are
//! reproduced here, the latter with a contended-atomic ablation.
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_nqueens::{count_parallel, QueensMode, Accumulator, SOLUTIONS};
//!
//! let rt = Runtime::with_threads(2);
//! let n = count_parallel(&rt, 8, QueensMode::Manual, false, 3,
//!                        Accumulator::WorkerLocal);
//! assert_eq!(n, SOLUTIONS[8]);
//! ```

#![warn(missing_docs)]

mod bench;
mod board;
mod parallel;
mod serial;

pub use bench::{cutoff_for, n_for, NQueensBench};
pub use board::{safe, Board, SOLUTIONS};
pub use parallel::{count_parallel, Accumulator, QueensMode};
pub use serial::{count_solutions, count_solutions_profiled};
