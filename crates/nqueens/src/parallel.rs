//! Task-parallel n-queens.
//!
//! "A task is created for each step of the solution. ... the parent state
//! needs to be copied to the children tasks" (§III-B): every spawned task
//! owns a copy of the board prefix. Solutions are accumulated in
//! `threadprivate`-style per-worker counters reduced at the end of the
//! region — the paper's contention fix — with a shared-atomic variant kept
//! as an ablation (`Accumulator::Atomic`, the `critical`-section idiom the
//! paper rejected).

use std::sync::atomic::{AtomicU64, Ordering};

use bots_runtime::{Runtime, Scope, TaskAttrs, WorkerCounter};

use crate::board::{safe, Board};

/// Cut-off style (mirrors the suite's `CutoffMode` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueensMode {
    /// A task per node, unbounded.
    NoCutoff,
    /// `if(depth < cutoff)` on each spawn.
    IfClause,
    /// Serial search below the cut-off depth.
    Manual,
}

/// How solutions are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accumulator {
    /// Per-worker counters, reduced once (the paper's `threadprivate`
    /// idiom).
    WorkerLocal,
    /// One shared atomic counter (the contended `critical` idiom).
    Atomic,
}

/// Counts all n-queens solutions on `rt`.
pub fn count_parallel(
    rt: &Runtime,
    n: usize,
    mode: QueensMode,
    untied: bool,
    cutoff: u32,
    acc: Accumulator,
) -> u64 {
    let attrs = TaskAttrs::default().with_tied(!untied);
    let local = WorkerCounter::new(rt.num_threads());
    let shared = AtomicU64::new(0);
    rt.parallel(|s| {
        let counter = Counter {
            acc,
            local: &local,
            shared: &shared,
        };
        node(s, n, Vec::with_capacity(n), mode, attrs, cutoff, &counter);
    });
    match acc {
        Accumulator::WorkerLocal => local.sum(),
        Accumulator::Atomic => shared.load(Ordering::Relaxed),
    }
}

struct Counter<'a> {
    acc: Accumulator,
    local: &'a WorkerCounter,
    shared: &'a AtomicU64,
}

impl Counter<'_> {
    #[inline]
    fn add(&self, s: &Scope<'_>, v: u64) {
        match self.acc {
            Accumulator::WorkerLocal => self.local.add(s, v),
            Accumulator::Atomic => {
                self.shared.fetch_add(v, Ordering::Relaxed);
            }
        }
    }
}

fn node<'s>(
    s: &Scope<'s>,
    n: usize,
    board: Board,
    mode: QueensMode,
    attrs: TaskAttrs,
    cutoff: u32,
    counter: &Counter<'_>,
) {
    if board.len() == n {
        counter.add(s, 1);
        return;
    }
    let depth = board.len() as u32;
    if mode == QueensMode::Manual && depth >= cutoff {
        // Below the manual cut-off: pure serial search, one counter bump.
        let mut b = board;
        let found = serial_from(n, &mut b);
        counter.add(s, found);
        return;
    }
    s.taskgroup(|s| {
        for col in 0..n as u8 {
            if safe(&board, col) {
                // The child copies the parent's board prefix — the captured
                // environment the paper measures.
                let mut child_board = Vec::with_capacity(n);
                child_board.extend_from_slice(&board);
                child_board.push(col);
                let builder = s
                    .task(move |s| {
                        node(s, n, child_board, mode, attrs, cutoff, counter);
                    })
                    .with_attrs(attrs);
                match mode {
                    QueensMode::IfClause => builder.if_clause(depth < cutoff).spawn(),
                    _ => builder.spawn(),
                }
            }
        }
    });
}

fn serial_from(n: usize, board: &mut Board) -> u64 {
    if board.len() == n {
        return 1;
    }
    let mut total = 0;
    for col in 0..n as u8 {
        if safe(board, col) {
            board.push(col);
            total += serial_from(n, board);
            board.pop();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::SOLUTIONS;

    #[test]
    fn all_modes_and_accumulators_agree() {
        let rt = Runtime::with_threads(4);
        for mode in [
            QueensMode::NoCutoff,
            QueensMode::IfClause,
            QueensMode::Manual,
        ] {
            for acc in [Accumulator::WorkerLocal, Accumulator::Atomic] {
                let got = count_parallel(&rt, 8, mode, false, 3, acc);
                assert_eq!(got, SOLUTIONS[8], "mode={mode:?} acc={acc:?}");
            }
        }
    }

    #[test]
    fn untied_matches() {
        let rt = Runtime::with_threads(4);
        let got = count_parallel(
            &rt,
            9,
            QueensMode::Manual,
            true,
            3,
            Accumulator::WorkerLocal,
        );
        assert_eq!(got, SOLUTIONS[9]);
    }

    #[test]
    fn single_thread_matches() {
        let rt = Runtime::with_threads(1);
        let got = count_parallel(
            &rt,
            8,
            QueensMode::NoCutoff,
            false,
            0,
            Accumulator::WorkerLocal,
        );
        assert_eq!(got, SOLUTIONS[8]);
    }

    #[test]
    fn deterministic_across_team_sizes() {
        for threads in [2, 3, 8] {
            let rt = Runtime::with_threads(threads);
            let got = count_parallel(
                &rt,
                9,
                QueensMode::IfClause,
                false,
                4,
                Accumulator::WorkerLocal,
            );
            assert_eq!(got, SOLUTIONS[9], "threads={threads}");
        }
    }
}
