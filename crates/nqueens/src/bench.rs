//! `Benchmark` wiring for NQueens.

use bots_inputs::InputClass;
use bots_profile::{CountingProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{
    fnv1a_u64, BenchMeta, Benchmark, CutoffMode, RunOutput, Tiedness, Verification, VersionSpec,
};

use crate::board::SOLUTIONS;
use crate::parallel::{count_parallel, Accumulator, QueensMode};
use crate::serial::{count_solutions, count_solutions_profiled};

/// Board size per class (medium matches the paper's 14×14).
pub fn n_for(class: InputClass) -> usize {
    class.pick([8, 12, 14, 15])
}

/// Cut-off depth per class for the if/manual versions.
pub fn cutoff_for(class: InputClass) -> u32 {
    class.pick([3, 4, 5, 5])
}

/// NQueens as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct NQueensBench;

impl Benchmark for NQueensBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "NQueens",
            origin: "Cilk",
            domain: "Search",
            structure: "At each node",
            task_directives: 1,
            tasks_inside: "single",
            nested_tasks: true,
            app_cutoff: "depth-based",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        let n = n_for(class);
        format!("{n}x{n} board")
    }

    fn versions(&self) -> Vec<VersionSpec> {
        VersionSpec::matrix(false)
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let n = n_for(class);
        let v = count_solutions(n);
        RunOutput::new(fnv1a_u64(v), format!("{v} solutions on {n}x{n}"))
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let n = n_for(class);
        let mode = match version.cutoff {
            CutoffMode::NoCutoff => QueensMode::NoCutoff,
            CutoffMode::IfClause => QueensMode::IfClause,
            CutoffMode::Manual => QueensMode::Manual,
        };
        let untied = version.tiedness == Tiedness::Untied;
        let v = count_parallel(
            rt,
            n,
            mode,
            untied,
            cutoff_for(class),
            Accumulator::WorkerLocal,
        );
        RunOutput::new(fnv1a_u64(v), format!("{v} solutions on {n}x{n}"))
    }

    fn verify(&self, class: InputClass, output: &RunOutput) -> Verification {
        // Solution counts are published mathematics (OEIS A000170).
        let want = fnv1a_u64(SOLUTIONS[n_for(class)]);
        if output.checksum == want {
            Verification::SelfChecked
        } else {
            Verification::Failed(format!("wrong solution count: {}", output.summary))
        }
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let p = CountingProbe::new();
        count_solutions_profiled(&p, n_for(class));
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3 lists "nqueens (manual-untied)" as the best version.
        VersionSpec::default()
            .cutoff(CutoffMode::Manual)
            .tied(Tiedness::Untied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_verify_on_test_class() {
        let b = NQueensBench;
        let out = b.run_serial(InputClass::Test);
        assert_eq!(b.verify(InputClass::Test, &out), Verification::SelfChecked);
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            assert_eq!(
                b.verify(InputClass::Test, &out),
                Verification::SelfChecked,
                "{v}"
            );
        }
    }

    #[test]
    fn characterization_has_no_shared_writes() {
        // Paper Table II: NQueens 0% non-private writes (threadprivate
        // accumulation).
        let c = NQueensBench.characterize(InputClass::Test);
        assert_eq!(c.writes_shared, 0);
        assert!(c.tasks > 1000);
    }

    #[test]
    fn best_version_is_manual_untied() {
        let v = NQueensBench.best_version();
        assert_eq!(v.label(), "manual-untied");
    }
}
