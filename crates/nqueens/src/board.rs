//! Board representation and the placement-safety predicate shared by the
//! serial and parallel versions (array-based, as in the BOTS/Cilk code —
//! both sides of a speed-up comparison must run the same algorithm).

/// A partial placement: `board[r]` is the column of the queen on row `r`.
pub type Board = Vec<u8>;

/// May a queen go in column `col` on the next row, given `board`'s rows?
#[inline]
pub fn safe(board: &[u8], col: u8) -> bool {
    let row = board.len();
    for (r, &c) in board.iter().enumerate() {
        if c == col {
            return false;
        }
        let dist = (row - r) as i32;
        if (c as i32 - col as i32).abs() == dist {
            return false;
        }
    }
    true
}

/// Arithmetic-operation estimate of one `safe` scan over `row` placed
/// queens (used by the instrumented run): distance, difference, abs,
/// compare per row.
#[inline]
pub fn safe_ops(row: usize) -> u64 {
    4 * row as u64
}

/// Known solution counts: `SOLUTIONS[n]` for the n-queens problem.
pub const SOLUTIONS: [u64; 16] = [
    1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2_680, 14_200, 73_712, 365_596, 2_279_184,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_rejects_same_column() {
        assert!(!safe(&[3], 3));
    }

    #[test]
    fn safe_rejects_diagonals() {
        assert!(!safe(&[0], 1)); // adjacent diagonal
        assert!(!safe(&[2, 7], 0)); // (0,2) attacks (2,0) two rows away
        assert!(safe(&[0], 2)); // knight-ish is fine
    }

    #[test]
    fn safe_on_empty_board() {
        for c in 0..8 {
            assert!(safe(&[], c));
        }
    }

    #[test]
    fn full_example_solution_is_safe_stepwise() {
        // A classic 8-queens solution.
        let solution = [0u8, 4, 7, 5, 2, 6, 1, 3];
        let mut board = Vec::new();
        for &c in &solution {
            assert!(safe(&board, c), "col {c} after {board:?}");
            board.push(c);
        }
    }
}
