//! Self-tests for the interleaving explorer: the harness must be
//! deterministic, must find deliberately seeded bugs within budget, must
//! replay what it found, and the real-protocol tiny configurations must
//! hold their invariants over every schedule.

use modelcheck::explore::{
    explore_exhaustive, explore_random, replay_seed, replay_trace, Schedule,
};
use modelcheck::scenarios;

const MAX_SCHEDULES: u64 = 200_000;
const MAX_STEPS: usize = 400;

// --- the harness finds seeded bugs -------------------------------------

/// The buggy toy protocols must be caught by exhaustive exploration well
/// within budget, each with a non-empty replayable trace.
#[test]
fn buggy_toys_are_found_within_budget() {
    for name in ["toy_lost_task", "toy_double_exec"] {
        let s = scenarios::find(name).unwrap();
        let v = explore_exhaustive(&s, MAX_SCHEDULES, MAX_STEPS)
            .expect_err("the seeded bug must be found");
        assert!(!v.trace.is_empty(), "violation must carry a trace");
        assert!(
            v.message.contains("violated"),
            "violation must name the broken invariant: {}",
            v.message
        );
    }
}

/// A violating trace must reproduce the violation when replayed — the
/// whole point of `BOTS_SCHEDULE`.
#[test]
fn violations_replay_deterministically() {
    let s = scenarios::find("toy_lost_task").unwrap();
    let v = explore_exhaustive(&s, MAX_SCHEDULES, MAX_STEPS).expect_err("bug expected");
    for _ in 0..3 {
        let replayed = replay_trace(&s, &v.trace, MAX_STEPS);
        assert_eq!(
            replayed.trace(),
            v.trace,
            "replay must follow the recorded decisions exactly"
        );
        assert!(
            replayed.error.is_some(),
            "replaying a violating schedule must reproduce the violation"
        );
    }
}

/// The same seed must produce the identical schedule (decision-for-
/// decision) on repeated runs: seeds are names for schedules.
#[test]
fn same_seed_means_identical_trace() {
    let s = scenarios::find("injector_small").unwrap();
    for seed in [1u64, 7, 42, 0xDEADBEEF] {
        let a = replay_seed(&s, seed, MAX_STEPS);
        let b = replay_seed(&s, seed, MAX_STEPS);
        assert!(
            a.error.is_none(),
            "protocol scenario must pass: {:?}",
            a.error
        );
        assert_eq!(
            a.trace(),
            b.trace(),
            "seed {seed} produced two different schedules"
        );
        // The full step records (sites included) must agree too.
        let sites = |o: &modelcheck::RunOutcome| {
            o.steps
                .iter()
                .map(|st| st.enabled.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(sites(&a), sites(&b), "seed {seed}: enabled sets diverged");
    }
}

// --- pinned historical regressions --------------------------------------

/// PR-4's tied-wait livelock: with the fix modeled out, no schedule makes
/// progress and the explorer reports it; with the fix in, every schedule
/// passes.
#[test]
fn pr4_tied_wait_regression_is_pinned() {
    let buggy = scenarios::find("pr4_tied_wait").unwrap();
    let v = explore_exhaustive(&buggy, MAX_SCHEDULES, MAX_STEPS)
        .expect_err("the reverted fix must be caught");
    assert!(v.message.contains("livelock"), "got: {}", v.message);

    let fixed = scenarios::find("pr4_tied_wait_fixed").unwrap();
    explore_exhaustive(&fixed, MAX_SCHEDULES, MAX_STEPS)
        .expect("the fixed variant must pass every schedule");
}

/// PR-5's per-clause-locking mutual wait: T1:[A,B] / T2:[B,A] interleaved
/// per-clause forms a dependency cycle; whole-task registration cannot.
#[test]
fn pr5_per_clause_regression_is_pinned() {
    let buggy = scenarios::find("pr5_per_clause").unwrap();
    let v = explore_exhaustive(&buggy, MAX_SCHEDULES, MAX_STEPS)
        .expect_err("the reverted fix must be caught");
    assert!(v.message.contains("cycle"), "got: {}", v.message);
    // The classic alternation T1:A, T2:B, T1:B, T2:A must itself violate.
    let replayed = replay_trace(&buggy, &v.trace, MAX_STEPS);
    assert!(replayed.error.is_some(), "pinned cycle trace must replay");

    let fixed = scenarios::find("pr5_per_clause_fixed").unwrap();
    explore_exhaustive(&fixed, MAX_SCHEDULES, MAX_STEPS)
        .expect("atomic whole-task registration must pass every schedule");
}

// --- the real protocols hold their invariants ---------------------------

/// Every tiny real-protocol configuration must survive exhaustive
/// exploration. This is the model-checking claim of the crate: all
/// schedules of the real injector / slab / deps / group code on these
/// configurations uphold W1 (nothing lost), W2 (nothing doubled), and the
/// exact-ledger bookkeeping.
#[test]
fn real_protocols_pass_exhaustive_tiny_configs() {
    for name in [
        "injector_tiny",
        "slab_reclaim",
        "deps_closed_swap",
        "deps_fanout",
        "group_lease_leave",
    ] {
        let s = scenarios::find(name).unwrap();
        let stats = explore_exhaustive(&s, MAX_SCHEDULES, MAX_STEPS).unwrap_or_else(|v| {
            panic!(
                "`{name}` violated: {} (replay: {})",
                v.message,
                v.replay_hint()
            )
        });
        assert!(
            stats.schedules > 1,
            "`{name}` explored only {} schedule(s) — the harness is not interleaving",
            stats.schedules
        );
    }
}

/// A random sweep over the larger injector configuration.
#[test]
fn injector_small_random_sweep_passes() {
    let s = scenarios::find("injector_small").unwrap();
    let stats = explore_random(&s, 1, 500, MAX_STEPS)
        .unwrap_or_else(|v| panic!("violated: {} (replay: {})", v.message, v.replay_hint()));
    assert_eq!(stats.schedules, 500);
}

// --- BOTS_SCHEDULE parsing ----------------------------------------------

#[test]
fn schedule_env_parses() {
    assert_eq!(
        Schedule::parse("trace:0,1,2").unwrap(),
        Schedule::Trace(vec![0, 1, 2])
    );
    assert_eq!(Schedule::parse("seed:42").unwrap(), Schedule::Seed(42));
    assert!(Schedule::parse("bogus").is_err());
    assert!(Schedule::parse("trace:a,b").is_err());
}
