//! The virtual scheduler: real OS threads, one runnable at a time.
//!
//! Each scenario thread ("vthread") is a real `std::thread` whose protocol
//! code is the *real* runtime code, compiled with `--features modelcheck`.
//! Every `bots_failpoint!` site the code crosses calls back into the
//! controller through the runtime's schedule hook and parks the thread.
//! The controller wakes exactly one parked thread at a time, so the
//! interleaving of linearization points is fully owned by whatever
//! [`Decider`] drives the run — a DFS explorer, a seeded RNG, or a trace
//! replayer.
//!
//! Two properties make runs deterministic and replayable:
//!
//! - only one vthread executes between yield points, so OS scheduling
//!   cannot reorder anything the harness observes;
//! - the enabled set handed to the decider is sorted by vthread id, so a
//!   decision index always names the same thread given the same prefix.
//!
//! One honest limitation, stated up front: the controller's mutex/condvar
//! hand-off creates a happens-before edge at every yield point, so runs
//! explore *interleavings under sequential consistency*. Weak-memory
//! reorderings are out of scope here — they are what the `xtask lint`
//! ordering audit and the `// relaxed-ok:` justifications are for.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use bots_runtime::failpoint;

/// How long the controller waits for the system to go quiet before
/// declaring the schedule hung. Scenario scripts run microseconds of real
/// work between yield points; five seconds is orders of magnitude past any
/// legitimate step.
const WATCHDOG: Duration = Duration::from_secs(5);

thread_local! {
    /// Set on vthreads only. The global schedule hook routes through this:
    /// threads without it (the test harness, scenario setup/check code on
    /// the main thread) pass every failpoint without parking.
    static VCTX: std::cell::RefCell<Option<(Arc<Controller>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Install the process-global schedule hook exactly once. The hook is a
/// pure dispatcher; all state lives in per-run [`Controller`]s reached via
/// the thread-local, so concurrent explorations (e.g. parallel `cargo
/// test` threads) never interfere.
fn ensure_hook() {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        failpoint::set_schedule_hook(Some(Arc::new(|site: &str| {
            let ctx = VCTX.with(|c| c.borrow().clone());
            if let Some((ctl, tid)) = ctx {
                ctl.yield_point(tid, site);
            }
        })));
    });
}

#[derive(Clone, Debug, PartialEq)]
enum Status {
    /// Spawned but not yet at the initial gate, or running between yields.
    Running,
    /// Parked at a failpoint site, waiting for a grant.
    Parked(String),
    /// Script returned (or panicked; the panic is recorded separately).
    Finished,
}

struct Ctl {
    status: Vec<Status>,
    /// The single outstanding grant: which vthread may leave its park.
    grant: Option<usize>,
    /// First script panic, if any.
    panic: Option<String>,
    /// Set when the controller gives up (watchdog, early stop): every
    /// yield point becomes a no-op so threads free-run to completion and
    /// can be joined.
    abandoned: bool,
}

/// Coordinates one scenario run. See the module docs for the protocol.
pub struct Controller {
    inner: Mutex<Ctl>,
    cv: Condvar,
}

impl Controller {
    fn new(threads: usize) -> Arc<Self> {
        Arc::new(Controller {
            inner: Mutex::new(Ctl {
                status: vec![Status::Running; threads],
                grant: None,
                panic: None,
                abandoned: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Called (via the schedule hook) by a vthread crossing a failpoint.
    /// Parks until the controller grants this thread the next step.
    fn yield_point(&self, tid: usize, site: &str) {
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if st.abandoned {
            return;
        }
        st.status[tid] = Status::Parked(site.to_string());
        self.cv.notify_all();
        loop {
            if st.abandoned {
                return;
            }
            if st.grant == Some(tid) {
                st.grant = None;
                st.status[tid] = Status::Running;
                self.cv.notify_all();
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        st.status[tid] = Status::Finished;
        if st.panic.is_none() {
            st.panic = panic_msg;
        }
        self.cv.notify_all();
    }

    /// Wait until every vthread is parked or finished, then return the
    /// enabled set (parked threads, sorted by id). `Ok(empty)` means all
    /// threads finished. `Err` is a watchdog hang: the run is abandoned so
    /// the threads can be joined, and the caller reports a violation.
    fn wait_quiet(&self) -> Result<Vec<(usize, String)>, String> {
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // Quiet = no outstanding grant (the granted thread has woken
            // and consumed it) and nobody running between yield points.
            if st.grant.is_none() && st.status.iter().all(|s| !matches!(s, Status::Running)) {
                let enabled = st
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(tid, s)| match s {
                        Status::Parked(site) => Some((tid, site.clone())),
                        _ => None,
                    })
                    .collect();
                return Ok(enabled);
            }
            let (guard, timeout) = self
                .cv
                .wait_timeout(st, WATCHDOG)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if timeout.timed_out() {
                let snapshot = format!("{:?}", st.status);
                st.abandoned = true;
                self.cv.notify_all();
                return Err(format!(
                    "watchdog: system never went quiet (likely a real deadlock or an \
                     unbounded spin between yield points); thread states: {snapshot}"
                ));
            }
        }
    }

    fn grant(&self, tid: usize) {
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(matches!(st.status[tid], Status::Parked(_)));
        st.grant = Some(tid);
        self.cv.notify_all();
    }

    fn abandon(&self) {
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        st.abandoned = true;
        self.cv.notify_all();
    }

    fn take_panic(&self) -> Option<String> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .panic
            .take()
    }
}

/// One instantiation of a scenario: fresh shared state baked into the
/// thread scripts and the post-run invariant check.
pub struct ScenarioRun {
    /// One script per vthread. Each runs to completion under the
    /// controller, parking at every failpoint it crosses.
    pub scripts: Vec<Box<dyn FnOnce() + Send + 'static>>,
    /// Runs on the harness thread after every script finished. Returns
    /// `Err` (or panics) to report an invariant violation.
    pub check: Box<dyn FnOnce() -> Result<(), String> + 'static>,
}

/// Chooses the next step. `enabled` is non-empty and sorted by vthread id;
/// the return value is an index into it.
pub trait Decider {
    /// Pick the enabled entry to run for step number `step`.
    fn choose(&mut self, step: usize, enabled: &[(usize, String)]) -> usize;
}

/// What happened at one decision point, for the explorer and for traces.
#[derive(Clone, Debug)]
pub struct StepRec {
    /// The parked threads (tid, site) the decider chose among.
    pub enabled: Vec<(usize, String)>,
    /// Index into `enabled` that was granted.
    pub chosen: usize,
}

/// The full result of driving one schedule.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every decision point in order; `steps[i].enabled[steps[i].chosen]`
    /// is the granted action.
    pub steps: Vec<StepRec>,
    /// `Some` if the run violated an invariant: a script panicked, the
    /// check failed, the watchdog fired, or the step budget ran out.
    pub error: Option<String>,
}

impl RunOutcome {
    /// The decision indices, i.e. the replayable `BOTS_SCHEDULE` trace.
    pub fn trace(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.chosen).collect()
    }
}

/// Drive one schedule of `run` under `decider`, with at most `max_steps`
/// decision points (a blown budget abandons the run and reports an error —
/// scenarios are finite, so this only trips on runaway loops).
pub fn run_schedule(run: ScenarioRun, decider: &mut dyn Decider, max_steps: usize) -> RunOutcome {
    ensure_hook();
    let n = run.scripts.len();
    let ctl = Controller::new(n);

    let handles: Vec<_> = run
        .scripts
        .into_iter()
        .enumerate()
        .map(|(tid, script)| {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || {
                VCTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctl), tid)));
                // The initial gate: every vthread parks before running any
                // scenario code, so the decider owns the very first step.
                ctl.yield_point(tid, "spawn");
                let result = catch_unwind(AssertUnwindSafe(script));
                let msg = result
                    .err()
                    .map(|p| format!("script panicked: {}", panic_str(&p)));
                VCTX.with(|c| *c.borrow_mut() = None);
                ctl.finish(tid, msg);
            })
        })
        .collect();

    let mut steps = Vec::new();
    let mut error = None;
    loop {
        match ctl.wait_quiet() {
            Err(hang) => {
                error = Some(hang);
                break;
            }
            Ok(enabled) if enabled.is_empty() => break,
            Ok(enabled) => {
                if steps.len() >= max_steps {
                    error = Some(format!(
                        "step budget exceeded ({max_steps}): scenario scripts must be finite"
                    ));
                    ctl.abandon();
                    break;
                }
                let chosen = decider.choose(steps.len(), &enabled);
                assert!(
                    chosen < enabled.len(),
                    "decider returned out-of-range index"
                );
                let tid = enabled[chosen].0;
                steps.push(StepRec { enabled, chosen });
                ctl.grant(tid);
            }
        }
    }

    for h in handles {
        let _ = h.join();
    }
    if error.is_none() {
        error = ctl.take_panic();
    }
    if error.is_none() {
        let check_result = catch_unwind(AssertUnwindSafe(run.check));
        error = match check_result {
            Ok(Ok(())) => None,
            Ok(Err(msg)) => Some(format!("invariant check failed: {msg}")),
            Err(p) => Some(format!("invariant check panicked: {}", panic_str(&p))),
        };
    }
    RunOutcome { steps, error }
}

fn panic_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A decider that replays a recorded trace of decision indices. Steps past
/// the end of the trace (or indices out of range for the enabled set, which
/// cannot happen when replaying against the same scenario) fall back to 0.
pub struct Replay<'a> {
    trace: &'a [usize],
}

impl<'a> Replay<'a> {
    /// Replay `trace`, the decision indices of a previous run.
    pub fn new(trace: &'a [usize]) -> Self {
        Replay { trace }
    }
}

impl Decider for Replay<'_> {
    fn choose(&mut self, step: usize, enabled: &[(usize, String)]) -> usize {
        let want = self.trace.get(step).copied().unwrap_or(0);
        if want < enabled.len() {
            want
        } else {
            0
        }
    }
}

/// SplitMix64: tiny, seedable, and stable across platforms — schedules
/// named by `BOTS_SCHEDULE=seed:N` replay bit-identically anywhere.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A decider that picks uniformly among enabled threads from a seed.
pub struct RandomDecider {
    rng: SplitMix64,
}

impl RandomDecider {
    /// Deterministic random schedule for `seed`.
    pub fn new(seed: u64) -> Self {
        RandomDecider {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Decider for RandomDecider {
    fn choose(&mut self, _step: usize, enabled: &[(usize, String)]) -> usize {
        (self.rng.next_u64() % enabled.len() as u64) as usize
    }
}

/// The protocol class of a failpoint site: the token before the first `_`
/// (`injector_pop_swap` -> `injector`). Two actions are treated as
/// independent for sleep-set pruning only when they come from different
/// threads AND different protocol classes — a deliberately conservative
/// relation (same-protocol actions always conflict; cross-protocol actions
/// touch disjoint data structures and commute under SC).
pub fn site_class(site: &str) -> &str {
    site.split('_').next().unwrap_or(site)
}

/// Sleep-set key for an action: (vthread, protocol class).
pub type ActionKey = (usize, String);

/// The sleep-set key of an enabled entry.
pub fn action_key(entry: &(usize, String)) -> ActionKey {
    (entry.0, site_class(&entry.1).to_string())
}

/// Site classes whose granted segments stay inside one runtime protocol's
/// own data structures. Only these may ever be declared independent;
/// scenario-glue sites (`spawn`, `vt_*`, `toy_*`, `pr*_*`) run arbitrary
/// script code — including shared scenario state like ready queues — so
/// they conflict with everything.
const PROTOCOL_CLASSES: [&str; 9] = [
    "injector", "slab", "group", "dep", "cont", "steal", "task", "loop", "replay",
];

/// Whether two actions commute (may be pruned against each other): they
/// must come from different threads and from *different* protocol classes
/// — distinct protocols own disjoint runtime structures. Same-class
/// actions always conflict, and anything outside [`PROTOCOL_CLASSES`]
/// conflicts with everything, so single-protocol scenarios are explored
/// fully exhaustively.
pub fn independent(a: &ActionKey, b: &ActionKey) -> bool {
    a.0 != b.0
        && a.1 != b.1
        && PROTOCOL_CLASSES.contains(&a.1.as_str())
        && PROTOCOL_CLASSES.contains(&b.1.as_str())
}

/// Helper for sleep-set propagation: the child state's sleep set after
/// executing `chosen` is the subset of the parent's that commutes with it.
pub fn propagate_sleep(sleep: &HashSet<ActionKey>, chosen: &ActionKey) -> HashSet<ActionKey> {
    sleep
        .iter()
        .filter(|k| independent(k, chosen))
        .cloned()
        .collect()
}
