//! CLI for the interleaving explorer.
//!
//! ```text
//! cargo run -p modelcheck -- --list
//! cargo run -p modelcheck -- --scenario injector_tiny            # exhaustive
//! cargo run -p modelcheck -- --scenario injector_small --random 5000
//! BOTS_SCHEDULE=trace:0,1,0,1 cargo run -p modelcheck -- --scenario toy_lost_task
//! BOTS_SCHEDULE=seed:42       cargo run -p modelcheck -- --scenario injector_small
//! cargo run -p modelcheck -- --ci                                 # the CI gate
//! ```

use std::process::ExitCode;

use modelcheck::explore::{explore_exhaustive, explore_random, Schedule};
use modelcheck::scenarios::{self, Scenario};
use modelcheck::Violation;

const DEFAULT_MAX_SCHEDULES: u64 = 200_000;
const DEFAULT_MAX_STEPS: usize = modelcheck::DEFAULT_MAX_STEPS;
const CI_RANDOM_SCHEDULES: u64 = 10_000;

struct Opts {
    scenario: Option<String>,
    random: Option<u64>,
    seed: u64,
    ci: bool,
    list: bool,
    expect_violation: bool,
    max_schedules: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: modelcheck [--list] [--ci] [--scenario NAME] [--random N] [--seed S]\n\
         \x20                 [--expect-violation] [--max-schedules N]\n\
         env:   BOTS_SCHEDULE=trace:i,j,... | seed:N   replay one schedule"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scenario: None,
        random: None,
        seed: 1,
        ci: false,
        list: false,
        expect_violation: false,
        max_schedules: DEFAULT_MAX_SCHEDULES,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--scenario" => opts.scenario = Some(take("--scenario")),
            "--random" => opts.random = Some(take("--random").parse().unwrap_or_else(|_| usage())),
            "--seed" => opts.seed = take("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-schedules" => {
                opts.max_schedules = take("--max-schedules").parse().unwrap_or_else(|_| usage())
            }
            "--ci" => opts.ci = true,
            "--list" => opts.list = true,
            "--expect-violation" => opts.expect_violation = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    opts
}

fn report(v: &Violation) {
    eprintln!("VIOLATION in scenario `{}`:", v.scenario);
    eprintln!("  {}", v.message);
    if let Some(seed) = v.seed {
        eprintln!("  found by seed {seed} (BOTS_SCHEDULE=seed:{seed})");
    }
    eprintln!("  trace: {:?}", v.trace);
    eprintln!("  replay: {}", v.replay_hint());
}

/// Run one scenario the way its registry entry asks for; returns the
/// violation if any schedule broke an invariant.
fn run_scenario(
    s: &Scenario,
    opts: &Opts,
    random_override: Option<u64>,
) -> Result<(), Box<Violation>> {
    if let Ok(sched) = std::env::var("BOTS_SCHEDULE") {
        let sched = Schedule::parse(&sched).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        });
        println!("replaying {sched:?} against `{}`", s.name);
        let outcome = sched.run(s, DEFAULT_MAX_STEPS);
        let trace = outcome.trace();
        return match outcome.error {
            None => {
                println!(
                    "  schedule upheld every invariant ({} steps)",
                    outcome.steps.len()
                );
                Ok(())
            }
            Some(message) => Err(Box::new(Violation {
                scenario: s.name.to_string(),
                trace,
                seed: None,
                message,
            })),
        };
    }

    if let Some(n) = random_override.or(opts.random) {
        let stats = explore_random(s, opts.seed, n, DEFAULT_MAX_STEPS)?;
        println!(
            "`{}`: {} random schedules ok ({} steps, base seed {})",
            s.name, stats.schedules, stats.steps, opts.seed
        );
    } else {
        let stats = explore_exhaustive(s, opts.max_schedules, DEFAULT_MAX_STEPS)?;
        println!(
            "`{}`: {} schedules explored exhaustively ({} steps, {} pruned) — all invariants hold",
            s.name, stats.schedules, stats.steps, stats.pruned
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = parse_args();

    if opts.list {
        for s in scenarios::all() {
            println!(
                "{:24} {}{}",
                s.name,
                if s.expect_violation {
                    "[expect-violation] "
                } else {
                    ""
                },
                s.about
            );
        }
        return ExitCode::SUCCESS;
    }

    if opts.ci {
        return run_ci(&opts);
    }

    let Some(name) = &opts.scenario else {
        eprintln!("need --scenario, --ci, or --list");
        usage()
    };
    let Some(s) = scenarios::find(name) else {
        eprintln!("unknown scenario `{name}`; --list shows all");
        return ExitCode::FAILURE;
    };

    match run_scenario(&s, &opts, None) {
        Ok(()) if opts.expect_violation => {
            eprintln!(
                "expected a violation in `{}` but every schedule passed",
                s.name
            );
            ExitCode::FAILURE
        }
        Ok(()) => ExitCode::SUCCESS,
        Err(v) if opts.expect_violation => {
            println!("found the expected violation in `{}`:", s.name);
            report(&v);
            ExitCode::SUCCESS
        }
        Err(v) => {
            report(&v);
            ExitCode::FAILURE
        }
    }
}

/// The CI gate: exhaustive tiny configs + random sweeps on the real
/// protocols must pass; every buggy toy / reverted-fix regression must be
/// caught (with a replayable trace, printed).
fn run_ci(opts: &Opts) -> ExitCode {
    if std::env::var("BOTS_SCHEDULE").is_ok() {
        eprintln!("--ci ignores BOTS_SCHEDULE; unset it");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for s in scenarios::all() {
        if s.expect_violation {
            match explore_exhaustive(&s, opts.max_schedules, DEFAULT_MAX_STEPS) {
                Err(v) => {
                    println!("`{}`: caught the seeded bug, as required", s.name);
                    report(&v);
                }
                Ok(stats) => {
                    eprintln!(
                        "`{}`: FAILED — explored {} schedules without catching the seeded bug",
                        s.name, stats.schedules
                    );
                    failed = true;
                }
            }
            continue;
        }
        if s.ci_exhaustive {
            if let Err(v) = run_one_ci(&s, opts, None) {
                report(&v);
                failed = true;
            }
        }
        if s.ci_random {
            if let Err(v) = run_one_ci(&s, opts, Some(CI_RANDOM_SCHEDULES)) {
                report(&v);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("modelcheck CI gate: all scenarios clean, all seeded bugs caught");
        ExitCode::SUCCESS
    }
}

fn run_one_ci(s: &Scenario, opts: &Opts, random: Option<u64>) -> Result<(), Box<Violation>> {
    match random {
        Some(n) => {
            let stats = explore_random(s, opts.seed, n, DEFAULT_MAX_STEPS)?;
            println!(
                "`{}`: {} random schedules ok ({} steps)",
                s.name, stats.schedules, stats.steps
            );
        }
        None => {
            let stats = explore_exhaustive(s, opts.max_schedules, DEFAULT_MAX_STEPS)?;
            println!(
                "`{}`: exhaustive — {} schedules, {} steps, {} pruned",
                s.name, stats.schedules, stats.steps, stats.pruned
            );
        }
    }
    Ok(())
}
