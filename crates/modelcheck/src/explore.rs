//! Bounded systematic exploration of a scenario's schedule tree.
//!
//! The explorer is stateless-search shaped: it cannot snapshot the real
//! runtime's heap state, so backtracking re-executes the scenario from
//! scratch with a forced decision prefix. Runs are deterministic (see
//! `sched`), so a prefix always reproduces the same enabled sets, and the
//! tree discovered incrementally is consistent.
//!
//! Three modes:
//!
//! - [`explore_exhaustive`]: DFS over every schedule, pruned with sleep
//!   sets (Godefroid) under a conservative independence relation — actions
//!   of different threads in *different protocol classes* commute; anything
//!   else conflicts. Single-protocol scenarios are explored fully.
//! - [`explore_random`]: seeded random schedules past what exhaustive
//!   budgets allow; every violation names the seed that found it.
//! - [`replay_trace`]: re-run one schedule from a `BOTS_SCHEDULE` trace.

use std::collections::HashSet;

use crate::scenarios::Scenario;
use crate::sched::{
    action_key, propagate_sleep, run_schedule, ActionKey, Decider, RandomDecider, Replay,
    RunOutcome, StepRec,
};

/// Default cap on decision points per schedule; far beyond any scenario.
pub const DEFAULT_MAX_STEPS: usize = 400;

/// A schedule that broke an invariant, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scenario name.
    pub scenario: String,
    /// Decision-index trace; replays via `BOTS_SCHEDULE=trace:...`.
    pub trace: Vec<usize>,
    /// The seed that produced the schedule, when found by random search.
    pub seed: Option<u64>,
    /// What went wrong (check failure, script panic, watchdog, budget).
    pub message: String,
}

impl Violation {
    /// The `BOTS_SCHEDULE` value that replays this violation.
    pub fn schedule_env(&self) -> String {
        format!(
            "trace:{}",
            self.trace
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }

    /// The full replay command line, printed with every violation.
    pub fn replay_hint(&self) -> String {
        format!(
            "BOTS_SCHEDULE={} cargo run -p modelcheck -- --scenario {}",
            self.schedule_env(),
            self.scenario
        )
    }
}

/// Exploration counters, reported on success.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    /// Complete schedules executed.
    pub schedules: u64,
    /// Total decision points across all schedules.
    pub steps: u64,
    /// Sibling branches skipped by the sleep-set relation.
    pub pruned: u64,
}

/// One node of the current DFS path.
struct Frame {
    enabled: Vec<(usize, String)>,
    /// Actions already fully explored from this state (Godefroid sleep
    /// set): re-exploring them as siblings cannot reveal new behaviour.
    sleep: HashSet<ActionKey>,
    /// Index (into `enabled`) taken on the most recent pass through here.
    chosen: usize,
}

/// A decider that follows a forced prefix, then picks the first enabled
/// action not in the (propagated) sleep set. Records the sleep set it
/// carried into each free step so the DFS driver can seed new frames.
struct DfsDecider {
    forced: Vec<usize>,
    /// Sleep set to carry into step `forced.len()` (the first free step).
    sleep_at_fork: HashSet<ActionKey>,
    sleep: HashSet<ActionKey>,
    /// For each step >= forced.len(): the sleep set in force at that step.
    free_sleeps: Vec<HashSet<ActionKey>>,
}

impl Decider for DfsDecider {
    fn choose(&mut self, step: usize, enabled: &[(usize, String)]) -> usize {
        let chosen = if step < self.forced.len() {
            self.forced[step]
        } else {
            if step == self.forced.len() {
                self.sleep = self.sleep_at_fork.clone();
            }
            self.free_sleeps.push(self.sleep.clone());
            enabled
                .iter()
                .position(|e| !self.sleep.contains(&action_key(e)))
                .unwrap_or(0)
        };
        if step >= self.forced.len() {
            self.sleep = propagate_sleep(&self.sleep, &action_key(&enabled[chosen]));
        }
        chosen
    }
}

fn violation(scenario: &Scenario, outcome: &RunOutcome, seed: Option<u64>) -> Violation {
    Violation {
        scenario: scenario.name.to_string(),
        trace: outcome.trace(),
        seed,
        message: outcome
            .error
            .clone()
            .unwrap_or_else(|| "unknown".to_string()),
    }
}

/// Exhaustively enumerate the schedule tree (with sleep-set pruning) up to
/// `max_schedules` complete schedules. Returns the first violation found,
/// or the exploration stats if every schedule upholds the invariants.
///
/// `Err` with a trace is the deliverable: print `Violation::replay_hint`
/// and the schedule reproduces byte-for-byte.
pub fn explore_exhaustive(
    scenario: &Scenario,
    max_schedules: u64,
    max_steps: usize,
) -> Result<Stats, Box<Violation>> {
    let mut stats = Stats::default();
    let mut frames: Vec<Frame> = Vec::new();
    // Forced prefix for the next run; empty on the first.
    let mut forced: Vec<usize> = Vec::new();
    let mut fork_sleep: HashSet<ActionKey> = HashSet::new();

    loop {
        let mut decider = DfsDecider {
            forced: forced.clone(),
            sleep_at_fork: fork_sleep.clone(),
            sleep: HashSet::new(),
            free_sleeps: Vec::new(),
        };
        let outcome = run_schedule((scenario.build)(), &mut decider, max_steps);
        stats.schedules += 1;
        stats.steps += outcome.steps.len() as u64;
        if outcome.error.is_some() {
            return Err(Box::new(violation(scenario, &outcome, None)));
        }

        // Extend the frame stack with the newly discovered suffix.
        let fork = forced.len();
        frames.truncate(fork);
        for (i, StepRec { enabled, chosen }) in outcome.steps.iter().enumerate().skip(fork) {
            frames.push(Frame {
                enabled: enabled.clone(),
                sleep: decider.free_sleeps[i - fork].clone(),
                chosen: *chosen,
            });
        }
        if stats.schedules >= max_schedules {
            return Ok(stats);
        }

        // Backtrack: deepest frame with an unexplored, non-sleeping sibling.
        let next = loop {
            let Some(frame) = frames.last_mut() else {
                return Ok(stats);
            };
            // The branch just explored is now redundant for siblings.
            frame.sleep.insert(action_key(&frame.enabled[frame.chosen]));
            let mut alt = None;
            for idx in (frame.chosen + 1)..frame.enabled.len() {
                if frame.sleep.contains(&action_key(&frame.enabled[idx])) {
                    stats.pruned += 1;
                    continue;
                }
                alt = Some(idx);
                break;
            }
            match alt {
                Some(idx) => break Some(idx),
                None => {
                    frames.pop();
                }
            }
        };
        let Some(idx) = next else { return Ok(stats) };
        let depth = frames.len() - 1;
        frames[depth].chosen = idx;
        forced = frames.iter().map(|f| f.chosen).collect();
        // The new branch's child inherits the *current* sleep at this
        // frame (including the sibling just retired), minus conflicts.
        fork_sleep = propagate_sleep(
            &frames[depth].sleep,
            &action_key(&frames[depth].enabled[idx]),
        );
    }
}

/// Run `count` seeded random schedules starting at `base_seed`. Every
/// schedule is independently replayable via `BOTS_SCHEDULE=seed:N`.
pub fn explore_random(
    scenario: &Scenario,
    base_seed: u64,
    count: u64,
    max_steps: usize,
) -> Result<Stats, Box<Violation>> {
    let mut stats = Stats::default();
    for i in 0..count {
        let seed = base_seed.wrapping_add(i);
        let mut decider = RandomDecider::new(seed);
        let outcome = run_schedule((scenario.build)(), &mut decider, max_steps);
        stats.schedules += 1;
        stats.steps += outcome.steps.len() as u64;
        if outcome.error.is_some() {
            return Err(Box::new(violation(scenario, &outcome, Some(seed))));
        }
    }
    Ok(stats)
}

/// Replay a single schedule from a decision-index trace.
pub fn replay_trace(scenario: &Scenario, trace: &[usize], max_steps: usize) -> RunOutcome {
    let mut decider = Replay::new(trace);
    run_schedule((scenario.build)(), &mut decider, max_steps)
}

/// Replay a single schedule from a seed.
pub fn replay_seed(scenario: &Scenario, seed: u64, max_steps: usize) -> RunOutcome {
    let mut decider = RandomDecider::new(seed);
    run_schedule((scenario.build)(), &mut decider, max_steps)
}

/// A parsed `BOTS_SCHEDULE` value: `trace:0,1,2` or `seed:42`.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Explicit decision-index trace.
    Trace(Vec<usize>),
    /// Seeded random schedule.
    Seed(u64),
}

impl Schedule {
    /// Parse a `BOTS_SCHEDULE` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("trace:") {
            let trace = rest
                .split(',')
                .filter(|t| !t.is_empty())
                .map(|t| t.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("bad trace element in BOTS_SCHEDULE: {e}"))?;
            Ok(Schedule::Trace(trace))
        } else if let Some(rest) = s.strip_prefix("seed:") {
            rest.trim()
                .parse::<u64>()
                .map(Schedule::Seed)
                .map_err(|e| format!("bad seed in BOTS_SCHEDULE: {e}"))
        } else {
            Err(format!(
                "BOTS_SCHEDULE must be `trace:<i,j,...>` or `seed:<n>`, got `{s}`"
            ))
        }
    }

    /// Run the schedule against a scenario.
    pub fn run(&self, scenario: &Scenario, max_steps: usize) -> RunOutcome {
        match self {
            Schedule::Trace(t) => replay_trace(scenario, t, max_steps),
            Schedule::Seed(s) => replay_seed(scenario, *s, max_steps),
        }
    }
}
