//! Deterministic interleaving model checker for the runtime's lock-free
//! protocols.
//!
//! The runtime's five protocols — the injector's swap-drain, the slab's
//! cross-thread reclaim, the taskgroup lease/leave drain claim, the dep
//! tracker's CLOSED-swap release, and the continuation state machine —
//! carry `bots_failpoint!` instrumentation at every linearization point.
//! This crate runs **the real protocol code** (via `bots-runtime`'s
//! `modelcheck` feature) on tiny configurations under a virtual scheduler
//! that owns every interleaving decision, explores the schedule tree
//! (exhaustively for tiny configs, sleep-set pruned, plus seeded random
//! sweeps), checks conservation invariants after every schedule, and
//! prints a replayable `BOTS_SCHEDULE=...` trace on any violation.
//!
//! The module split:
//!
//! - [`sched`] — the virtual scheduler: park-at-failpoint controller,
//!   deciders (replay, seeded random), determinism guarantees.
//! - [`explore`] — bounded systematic exploration: DFS with sleep-set
//!   pruning, random sweeps, `BOTS_SCHEDULE` parsing.
//! - [`scenarios`] — the scenario library: real-protocol configurations,
//!   deliberately buggy toys, and the PR-4/PR-5 pinned regressions.
//!
//! The TLA+ side of the same protocols lives in `specs/tla/`; the
//! ordering-justification lint that guards the implementation's atomics
//! lives in `crates/xtask`.

#![warn(missing_docs)]

pub mod explore;
pub mod scenarios;
pub mod sched;

pub use explore::{
    explore_exhaustive, explore_random, replay_seed, replay_trace, Schedule, Stats, Violation,
    DEFAULT_MAX_STEPS,
};
pub use scenarios::{all, find, Scenario};
pub use sched::{run_schedule, Decider, RunOutcome, ScenarioRun, StepRec};
