//! Scenario library: tiny configurations of the real protocol code, plus
//! deliberately buggy toys and the two pinned historical regressions.
//!
//! Every scenario builds fresh shared state, a script per virtual thread,
//! and a post-run invariant check. Scripts must be **finite** (bounded
//! loops only) and must never spin-wait across a yield point — a parked
//! sibling cannot make progress until the controller grants it, so an
//! unbounded wait inside one granted step is a watchdog hang, not a
//! schedule. Work a script could not get to (e.g. a retirer that finished
//! before the registrant produced work) is drained deterministically by
//! the check, so the invariants are still total.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bots_runtime::failpoint::fire;
use bots_runtime::mc;

use crate::sched::ScenarioRun;

/// A named, self-describing scenario.
pub struct Scenario {
    /// Registry name (`--scenario <name>`).
    pub name: &'static str,
    /// One line shown by `--list`.
    pub about: &'static str,
    /// Whether the explorer is *expected* to find a violation (buggy toys
    /// and reverted-fix regressions). `--ci` fails if it does not.
    pub expect_violation: bool,
    /// Explore exhaustively in `--ci` (tiny configurations only).
    pub ci_exhaustive: bool,
    /// Also run the seeded-random sweep in `--ci`.
    pub ci_random: bool,
    /// Builds one fresh run: state + scripts + check.
    pub build: fn() -> ScenarioRun,
}

/// Every registered scenario.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "injector_tiny",
            about: "swap-drain injector, 1 shard, 2 workers, 3 records (exhaustive)",
            expect_violation: false,
            ci_exhaustive: true,
            ci_random: false,
            build: build_injector_tiny,
        },
        Scenario {
            name: "injector_small",
            about: "swap-drain injector, 2 shards, 3 workers, 4 records (random sweep)",
            expect_violation: false,
            ci_exhaustive: false,
            ci_random: true,
            build: build_injector_small,
        },
        Scenario {
            name: "slab_reclaim",
            about: "slab owner allocs vs two cross-thread frees on the Treiber reclaim stack",
            expect_violation: false,
            ci_exhaustive: true,
            ci_random: true,
            build: build_slab_reclaim,
        },
        Scenario {
            name: "deps_closed_swap",
            about: "dep chain on one address: edge CAS vs concurrent CLOSED-swap retire",
            expect_violation: false,
            ci_exhaustive: true,
            ci_random: true,
            build: build_deps_closed_swap,
        },
        Scenario {
            name: "deps_fanout",
            about: "write-read-read-write diamond: reader lists vs retire",
            expect_violation: false,
            ci_exhaustive: true,
            ci_random: true,
            build: build_deps_fanout,
        },
        Scenario {
            name: "group_lease_leave",
            about: "taskgroup waiter registration vs the drain claim (exactly-one-wake)",
            expect_violation: false,
            ci_exhaustive: true,
            ci_random: false,
            build: build_group_lease_leave,
        },
        Scenario {
            name: "toy_lost_task",
            about: "BUGGY toy: stale top read across the pop — loses and duplicates a task",
            expect_violation: true,
            ci_exhaustive: true,
            ci_random: false,
            build: build_toy_lost_task,
        },
        Scenario {
            name: "toy_double_exec",
            about: "BUGGY toy: check-then-act claim flag — two workers run the same task",
            expect_violation: true,
            ci_exhaustive: true,
            ci_random: false,
            build: build_toy_double_exec,
        },
        Scenario {
            name: "pr4_tied_wait",
            about: "PINNED REGRESSION (fix reverted): tied waiter refuses foreign deque bottom",
            expect_violation: true,
            ci_exhaustive: true,
            ci_random: false,
            build: || build_pr4_tied_wait(false),
        },
        Scenario {
            name: "pr4_tied_wait_fixed",
            about: "PR-4 fix in place: waiter probes past the tied constraint and progresses",
            expect_violation: false,
            ci_exhaustive: true,
            ci_random: false,
            build: || build_pr4_tied_wait(true),
        },
        Scenario {
            name: "pr5_per_clause",
            about: "PINNED REGRESSION (fix reverted): per-clause locking lets T1:[A,B]/T2:[B,A] deadlock",
            expect_violation: true,
            ci_exhaustive: true,
            ci_random: false,
            build: || build_pr5_per_clause(false),
        },
        Scenario {
            name: "pr5_per_clause_fixed",
            about: "PR-5 fix in place: whole-task registration order is total — no mutual wait",
            expect_violation: false,
            ci_exhaustive: true,
            ci_random: false,
            build: || build_pr5_per_clause(true),
        },
    ]
}

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------------
// Injector: the swap-drain protocol (injector.rs).
// ---------------------------------------------------------------------------

fn check_injector_conservation(
    inj: &mc::Injector,
    popped: &[mc::Rec],
    pushed: &[mc::Rec],
    shards: usize,
) -> Result<(), String> {
    let mut all = popped.to_vec();
    for s in 0..shards {
        while let Some(r) = inj.pop(s) {
            all.push(r);
        }
    }
    let mut uniq = all.clone();
    uniq.sort();
    uniq.dedup();
    if uniq.len() != all.len() {
        return Err(format!(
            "W2 violated: a record was popped twice ({} pops, {} distinct)",
            all.len(),
            uniq.len()
        ));
    }
    let mut want = pushed.to_vec();
    want.sort();
    if uniq != want {
        return Err(format!(
            "W1 violated: pushed {} records, recovered {}",
            want.len(),
            uniq.len()
        ));
    }
    if !inj.is_probably_empty() {
        return Err("W6 violated: drained injector still reports non-empty".into());
    }
    for r in all {
        mc::free_record(r);
    }
    Ok(())
}

fn build_injector_tiny() -> ScenarioRun {
    let inj = Arc::new(mc::Injector::new(1));
    let recs: Vec<mc::Rec> = (0..3).map(|_| mc::new_record()).collect();
    let popped = Arc::new(Mutex::new(Vec::new()));

    let (a, b, c) = (recs[0], recs[1], recs[2]);
    let i0 = Arc::clone(&inj);
    let p0 = Arc::clone(&popped);
    let i1 = Arc::clone(&inj);
    let p1 = Arc::clone(&popped);
    ScenarioRun {
        scripts: vec![
            Box::new(move || {
                i0.push(a, 0);
                i0.push(b, 0);
                if let Some(r) = i0.pop(0) {
                    p0.lock().unwrap().push(r);
                }
            }),
            Box::new(move || {
                i1.push(c, 0);
                if let Some(r) = i1.pop(0) {
                    p1.lock().unwrap().push(r);
                }
            }),
        ],
        check: Box::new(move || {
            let popped = popped.lock().unwrap().clone();
            check_injector_conservation(&inj, &popped, &recs, 1)
        }),
    }
}

fn build_injector_small() -> ScenarioRun {
    let inj = Arc::new(mc::Injector::new(2));
    let recs: Vec<mc::Rec> = (0..4).map(|_| mc::new_record()).collect();
    let popped = Arc::new(Mutex::new(Vec::new()));

    let scripts: Vec<Box<dyn FnOnce() + Send>> = vec![
        {
            let (inj, popped, r0, r1) = (Arc::clone(&inj), Arc::clone(&popped), recs[0], recs[1]);
            Box::new(move || {
                inj.push(r0, 0);
                inj.push(r1, 1);
                if let Some(r) = inj.pop(0) {
                    popped.lock().unwrap().push(r);
                }
            })
        },
        {
            let (inj, popped, r2) = (Arc::clone(&inj), Arc::clone(&popped), recs[2]);
            Box::new(move || {
                inj.push(r2, 0);
                if let Some(r) = inj.pop(1) {
                    popped.lock().unwrap().push(r);
                }
            })
        },
        {
            let (inj, popped, r3) = (Arc::clone(&inj), Arc::clone(&popped), recs[3]);
            Box::new(move || {
                inj.push(r3, 1);
                if let Some(r) = inj.pop(0) {
                    popped.lock().unwrap().push(r);
                }
            })
        },
    ];
    ScenarioRun {
        scripts,
        check: Box::new(move || {
            let popped = popped.lock().unwrap().clone();
            check_injector_conservation(&inj, &popped, &recs, 2)
        }),
    }
}

// ---------------------------------------------------------------------------
// Slab: owner allocation vs cross-thread Treiber reclaim (slab.rs).
// ---------------------------------------------------------------------------

fn build_slab_reclaim() -> ScenarioRun {
    let slab = Arc::new(mc::Slab::new(2));
    // Setup runs on the harness thread (the hook passes it through): carve
    // two records the remote threads will free back concurrently.
    let (a, _) = unsafe { slab.alloc_init() };
    let (b, _) = unsafe { slab.alloc_init() };
    // Every address alloc() ever returned, in order. a and b may each
    // reappear at most once (they are freed exactly once).
    let returned = Arc::new(Mutex::new(Vec::<mc::Rec>::new()));

    let scripts: Vec<Box<dyn FnOnce() + Send>> = vec![
        {
            // The owner: allocates twice mid-race (may drain the reclaim
            // stack, may carve fresh chunks).
            let (slab, returned) = (Arc::clone(&slab), Arc::clone(&returned));
            Box::new(move || {
                for _ in 0..2 {
                    let (r, _) = unsafe { slab.alloc_init() };
                    returned.lock().unwrap().push(r);
                }
            })
        },
        {
            let slab = Arc::clone(&slab);
            Box::new(move || slab.free_remote(a))
        },
        {
            let slab = Arc::clone(&slab);
            Box::new(move || slab.free_remote(b))
        },
    ];
    ScenarioRun {
        scripts,
        check: Box::new(move || {
            let mut seen = returned.lock().unwrap().clone();
            // Drain: keep allocating until both freed records resurfaced;
            // the reclaim stack is drained at least every other alloc, so
            // a bounded number of attempts suffices — or a record was lost.
            for _ in 0..10 {
                if seen.contains(&a) && seen.contains(&b) {
                    break;
                }
                let (r, _) = unsafe { slab.alloc_init() };
                seen.push(r);
            }
            let mut uniq = seen.clone();
            uniq.sort();
            uniq.dedup();
            if uniq.len() != seen.len() {
                return Err(format!(
                    "W2 violated: an address was allocated twice while live \
                     (double reclaim); {} allocs, {} distinct",
                    seen.len(),
                    uniq.len()
                ));
            }
            if !seen.contains(&a) || !seen.contains(&b) {
                return Err(
                    "W1 violated: a remotely-freed record never resurfaced (lost reclaim)".into(),
                );
            }
            Ok(())
        }),
    }
}

// ---------------------------------------------------------------------------
// Deps: edge CAS vs CLOSED-swap retire (deps.rs).
// ---------------------------------------------------------------------------

struct DepsWorld {
    deps: mc::Deps,
    ready: Mutex<VecDeque<mc::Rec>>,
    queued: Mutex<HashMap<mc::Rec, usize>>,
    retired: Mutex<Vec<mc::Rec>>,
}

impl DepsWorld {
    fn enqueue(&self, r: mc::Rec) {
        *self.queued.lock().unwrap().entry(r).or_insert(0) += 1;
        self.ready.lock().unwrap().push_back(r);
    }

    fn retire_next(&self) -> bool {
        let next = self.ready.lock().unwrap().pop_front();
        match next {
            Some(r) => {
                self.deps.retire(r, |s| self.enqueue(s));
                self.retired.lock().unwrap().push(r);
                true
            }
            None => false,
        }
    }

    fn check(&self, tasks: &[mc::Rec]) -> Result<(), String> {
        // Drain whatever the retirer's bounded loop did not get to.
        while self.retire_next() {}
        let retired = self.retired.lock().unwrap().clone();
        if retired.len() != tasks.len() {
            return Err(format!(
                "W1 violated: {} of {} tasks retired — the rest were stranded \
                 (lost release)",
                retired.len(),
                tasks.len()
            ));
        }
        let queued = self.queued.lock().unwrap();
        for t in tasks {
            match queued.get(t).copied().unwrap_or(0) {
                1 => {}
                0 => return Err("W1 violated: a task was never queued".into()),
                n => {
                    return Err(format!(
                        "W2 violated: a task was queued {n} times (double release)"
                    ))
                }
            }
        }
        drop(queued);
        self.deps.reset();
        for t in tasks {
            mc::free_record(*t);
        }
        Ok(())
    }
}

/// Registrant + retirer over `clauses_of`: the registrant registers every
/// task in order (registration holds the map mutex, so exactly one
/// registrant thread — see `mc::Deps::register`); the retirer races
/// retires against the in-flight edge CASes.
fn build_deps_scenario(clause_sets: Vec<Vec<mc::Clause>>) -> ScenarioRun {
    let world = Arc::new(DepsWorld {
        deps: mc::Deps::new(),
        ready: Mutex::new(VecDeque::new()),
        queued: Mutex::new(HashMap::new()),
        retired: Mutex::new(Vec::new()),
    });
    let tasks: Vec<mc::Rec> = (0..clause_sets.len()).map(|_| mc::new_record()).collect();

    let scripts: Vec<Box<dyn FnOnce() + Send>> = vec![
        {
            let (world, tasks) = (Arc::clone(&world), tasks.clone());
            Box::new(move || {
                for (t, clauses) in tasks.iter().zip(&clause_sets) {
                    if world.deps.register(*t, clauses) {
                        world.enqueue(*t);
                    }
                }
            })
        },
        {
            let world = Arc::clone(&world);
            Box::new(move || {
                // Bounded: empty polls cost nothing and the check drains
                // the remainder.
                for _ in 0..12 {
                    world.retire_next();
                }
            })
        },
    ];
    ScenarioRun {
        scripts,
        check: Box::new(move || world.check(&tasks)),
    }
}

fn build_deps_closed_swap() -> ScenarioRun {
    const A: usize = 0x1000;
    // Three writers on one address: a dense chain, maximal CLOSED-swap
    // pressure (every edge CAS races the predecessor's retire).
    build_deps_scenario(vec![
        vec![mc::dep_write(A)],
        vec![mc::dep_write(A)],
        vec![mc::dep_write(A)],
    ])
}

fn build_deps_fanout() -> ScenarioRun {
    const A: usize = 0x2000;
    // Write, two readers, write: exercises the reader-list edges and the
    // writer that must wait for the whole reader generation.
    build_deps_scenario(vec![
        vec![mc::dep_write(A)],
        vec![mc::dep_read(A)],
        vec![mc::dep_read(A)],
        vec![mc::dep_write(A)],
    ])
}

// ---------------------------------------------------------------------------
// Group: waiter registration vs the drain claim (group.rs + scope.rs's
// wait_group shape).
// ---------------------------------------------------------------------------

#[derive(Default)]
struct GroupObs {
    owner_last: bool,
    drained_pre_register: bool,
    refused: bool,
    took_back: bool,
    wake_token: bool,
    parked: bool,
    member_drained: bool,
    /// `Some(claim result)` once the member ran its drain claim.
    member_claim: Option<Option<usize>>,
}

fn build_group_lease_leave() -> ScenarioRun {
    let pool = Arc::new(mc::Groups::new(1));
    let (g, _) = pool.lease(0);
    g.reset();
    g.join(); // the "owner" role
    g.join(); // the "member" role
    let obs = Arc::new(Mutex::new(GroupObs::default()));
    let tok = mc::waiter_token(0);

    let scripts: Vec<Box<dyn FnOnce() + Send>> = vec![
        {
            // The owner mirrors scope.rs wait_group's first iteration,
            // straight-line. Explicit `vt_*` fires between protocol calls
            // make each read/CAS its own schedulable step.
            let obs = Arc::clone(&obs);
            Box::new(move || {
                if g.leave() {
                    // Last out: the drain claim is this thread's duty.
                    let claimed = g.claim_waiter();
                    let mut o = obs.lock().unwrap();
                    o.owner_last = true;
                    assert!(claimed.is_none(), "claim found a token nobody registered");
                    return;
                }
                fire("vt_owner_probe");
                if g.outstanding() == 0 {
                    obs.lock().unwrap().drained_pre_register = true;
                    return;
                }
                fire("vt_owner_register");
                if !g.try_register_waiter(tok) {
                    obs.lock().unwrap().refused = true;
                    return;
                }
                fire("vt_owner_recheck");
                if g.outstanding() == 0 {
                    fire("vt_owner_unregister");
                    if g.unregister_waiter(tok) {
                        obs.lock().unwrap().took_back = true;
                    } else {
                        obs.lock().unwrap().wake_token = true;
                    }
                } else {
                    // The real code suspends here; the registration stays
                    // and the member's claim must deliver the wake.
                    obs.lock().unwrap().parked = true;
                }
            })
        },
        {
            let obs = Arc::clone(&obs);
            Box::new(move || {
                if g.leave() {
                    {
                        obs.lock().unwrap().member_drained = true;
                    }
                    fire("vt_member_claim");
                    let claim = g.claim_waiter();
                    obs.lock().unwrap().member_claim = Some(claim);
                }
            })
        },
    ];
    ScenarioRun {
        scripts,
        check: Box::new(move || {
            let o = obs.lock().unwrap();
            let member_claim = o.member_claim;
            if o.owner_last == o.member_drained {
                return Err(format!(
                    "exactly one leaver must see the drain (owner_last={}, member_drained={})",
                    o.owner_last, o.member_drained
                ));
            }
            let wake_via_claim = member_claim == Some(Some(tok));
            if o.parked && !wake_via_claim {
                return Err(format!(
                    "W1 violated (lost wake-up): waiter stayed registered but the \
                     drain claim delivered {member_claim:?}, not the token"
                ));
            }
            if o.took_back && wake_via_claim {
                return Err(
                    "W2 violated (double wake): waiter took its registration back AND \
                     the claim delivered the token"
                        .into(),
                );
            }
            if o.wake_token && !wake_via_claim {
                return Err(
                    "unregister lost to the claim, but the claim did not hold the token".into(),
                );
            }
            if (o.refused || o.drained_pre_register) && member_claim == Some(Some(tok)) {
                return Err("claim delivered a token that was never left registered".into());
            }
            // The drain-claim rendezvous: whoever drained has stamped
            // CLAIMED by now; the lease owner's reuse spin must terminate.
            g.await_drain_claim();
            drop(o);
            pool.release(g, 0);
            Ok(())
        }),
    }
}

// ---------------------------------------------------------------------------
// Toys: deliberately buggy protocols the explorer must catch.
// ---------------------------------------------------------------------------

fn build_toy_lost_task() -> ScenarioRun {
    // The classic stale-read pop: read the top, yield, then pop whatever
    // is there now but account for what was read. Two workers lose one
    // task and double-claim another.
    let stack = Arc::new(Mutex::new(vec![1u32, 2u32]));
    let claimed = Arc::new(Mutex::new(Vec::<u32>::new()));

    let scripts: Vec<Box<dyn FnOnce() + Send>> = (0..2)
        .map(|_| {
            let (stack, claimed) = (Arc::clone(&stack), Arc::clone(&claimed));
            Box::new(move || {
                let top = stack.lock().unwrap().last().copied();
                fire("toy_pop"); // the buggy window: top may be stale now
                if let Some(top) = top {
                    let taken = stack.lock().unwrap().pop();
                    if taken.is_some() {
                        claimed.lock().unwrap().push(top);
                    }
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    ScenarioRun {
        scripts,
        check: Box::new(move || {
            let mut got = claimed.lock().unwrap().clone();
            got.sort_unstable();
            if got != vec![1, 2] {
                return Err(format!(
                    "W1/W2 violated: claimed {got:?}, expected [1, 2] exactly once each"
                ));
            }
            Ok(())
        }),
    }
}

fn build_toy_double_exec() -> ScenarioRun {
    // Check-then-act on a claim flag: both workers observe unclaimed,
    // both run the task.
    let flag = Arc::new(AtomicBool::new(false));
    let execs = Arc::new(AtomicUsize::new(0));

    let scripts: Vec<Box<dyn FnOnce() + Send>> = (0..2)
        .map(|_| {
            let (flag, execs) = (Arc::clone(&flag), Arc::clone(&execs));
            Box::new(move || {
                if !flag.load(Ordering::SeqCst) {
                    fire("toy_claim"); // the buggy window
                    flag.store(true, Ordering::SeqCst);
                    execs.fetch_add(1, Ordering::SeqCst);
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    ScenarioRun {
        scripts,
        check: Box::new(move || {
            let n = execs.load(Ordering::SeqCst);
            if n != 1 {
                return Err(format!("W2 violated: task executed {n} times"));
            }
            Ok(())
        }),
    }
}

// ---------------------------------------------------------------------------
// Pinned regressions: the two interleaving bugs this repo actually shipped
// and fixed, modelled so the explorer demonstrably catches each with the
// fix reverted and passes with it in place.
// ---------------------------------------------------------------------------

/// PR-4's tied-wait livelock: a tied task blocked in `wait_group` could
/// only legally resume work from its own depth, but the only runnable task
/// sat at the *bottom* of a foreign deque — which the buggy scheduling
/// constraint refused to take. Nobody else could run it either (its owner
/// was blocked in the same wait), so the system spun forever. The fix let
/// a blocked waiter probe past the tied constraint for foreign bottoms.
fn build_pr4_tied_wait(fixed: bool) -> ScenarioRun {
    let foreign_task = Arc::new(AtomicBool::new(true)); // sits at T1's deque bottom
    let progressed = Arc::new(AtomicBool::new(false));

    let scripts: Vec<Box<dyn FnOnce() + Send>> = vec![
        {
            let (foreign_task, progressed) = (Arc::clone(&foreign_task), Arc::clone(&progressed));
            Box::new(move || {
                // The blocked tied waiter: a bounded stand-in for the
                // production help-loop (which re-probed forever).
                for _ in 0..4 {
                    fire("pr4_probe");
                    if foreign_task.load(Ordering::SeqCst) && fixed {
                        // The fix: take the foreign deque's bottom.
                        foreign_task.store(false, Ordering::SeqCst);
                        progressed.store(true, Ordering::SeqCst);
                        return;
                    }
                    // Buggy: the tied constraint rejects the only task.
                }
            })
        },
        {
            Box::new(move || {
                // The foreign deque's owner: blocked in the same group
                // wait, never returns to its own bottom.
                fire("pr4_owner_blocked");
            })
        },
    ];
    ScenarioRun {
        scripts,
        check: Box::new(move || {
            if !progressed.load(Ordering::SeqCst) {
                return Err(
                    "livelock: the waiter never ran the foreign bottom task and its \
                     owner is blocked — no schedule makes progress"
                        .into(),
                );
            }
            Ok(())
        }),
    }
}

/// PR-5's per-clause registration deadlock: registering each dependence
/// clause under its own per-address lock let T1:[A,B] and T2:[B,A]
/// interleave into a mutual-wait cycle (T1 waits on T2 via B, T2 waits on
/// T1 via A). The fix made whole-task registration atomic — registration
/// order is total, so the waits-for graph is acyclic by construction.
fn build_pr5_per_clause(fixed: bool) -> ScenarioRun {
    struct Pr5 {
        writers: [Mutex<Option<usize>>; 2],
        pending: [AtomicUsize; 2],
        succ: [Mutex<Vec<usize>>; 2],
        reg: Mutex<()>, // the fix: one lock for the whole registration
    }
    impl Pr5 {
        fn apply(&self, task: usize, addr: usize) {
            let mut w = self.writers[addr].lock().unwrap();
            if let Some(prev) = *w {
                if prev != task {
                    self.pending[task].fetch_add(1, Ordering::SeqCst);
                    self.succ[prev].lock().unwrap().push(task);
                }
            }
            *w = Some(task);
        }
    }
    let st = Arc::new(Pr5 {
        writers: [Mutex::new(None), Mutex::new(None)],
        pending: [AtomicUsize::new(0), AtomicUsize::new(0)],
        succ: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
        reg: Mutex::new(()),
    });

    // T1 declares [A, B]; T2 declares [B, A].
    let clause_orders = [[0usize, 1], [1usize, 0]];
    let scripts: Vec<Box<dyn FnOnce() + Send>> = (0..2)
        .map(|task| {
            let st = Arc::clone(&st);
            let order = clause_orders[task];
            Box::new(move || {
                if fixed {
                    fire("pr5_register");
                    // Whole-task registration under one lock: no yield
                    // point inside, so clause application is atomic.
                    let _guard = st.reg.lock().unwrap();
                    st.apply(task, order[0]);
                    st.apply(task, order[1]);
                } else {
                    // Buggy: each clause locks only its own address, with
                    // a linearization point between them.
                    st.apply(task, order[0]);
                    fire("pr5_clause_gap");
                    st.apply(task, order[1]);
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    ScenarioRun {
        scripts,
        check: Box::new(move || {
            // Execute the declared graph worklist-style; a cycle strands
            // both tasks with pending > 0.
            let mut pending = [
                st.pending[0].load(Ordering::SeqCst),
                st.pending[1].load(Ordering::SeqCst),
            ];
            let mut ready: Vec<usize> = (0..2).filter(|&t| pending[t] == 0).collect();
            let mut executed = 0usize;
            while let Some(t) = ready.pop() {
                executed += 1;
                for &s in st.succ[t].lock().unwrap().iter() {
                    pending[s] -= 1;
                    if pending[s] == 0 {
                        ready.push(s);
                    }
                }
            }
            if executed != 2 {
                return Err(format!(
                    "W1 violated: dependency cycle — only {executed} of 2 tasks could \
                     ever run (mutual wait via per-clause registration)"
                ));
            }
            Ok(())
        }),
    }
}
