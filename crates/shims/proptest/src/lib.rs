//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the narrow slice of proptest's API that the BOTS property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! integer and float range strategies, `any::<T>()` for primitives, tuple
//! strategies, [`collection::vec`], [`Just`], `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) but is not minimised.
//! * **Deterministic generation.** Each test derives its RNG seed from the
//!   test's name and the case index, so failures reproduce exactly across
//!   runs — there is no persistence file.
//! * Only the combinators listed above exist. Adding one is a few lines.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Mirror of `proptest::collection`: strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` for an exact length, or a
    /// `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Runs a block of property tests. Supports the
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header and
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($p:pat_param in $s:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1, cfg.cases, stringify!($name), msg,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness (early-returns an
/// error from the test case instead of panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Skips the current case when `cond` is false (real proptest rejects the
/// input and draws a replacement; the shim simply counts the case as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+),
            ));
        }
    }};
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
