//! Test-runner half of the shim: configuration and the deterministic RNG.

/// Per-test configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64-based generator, seeded from the test name and case index so
/// every run of a given test explores the same inputs (reproducibility
/// without a persistence file).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name, mixed with the case.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = TestRng::for_case("x::y", 4);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
