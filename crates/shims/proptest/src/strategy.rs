//! Strategy trait and the combinators the BOTS property tests use.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`. Unlike real proptest
/// there is no value tree: generation is direct and unshrinkable.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and feeds it to `f` to obtain the
    /// strategy that produces the final value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// Mirror of `proptest::prelude::any`: the full-range strategy for a
/// primitive type.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, roughly unit-scale values: property tests over floats in
        // this suite are numerical, not bit-pattern, tests.
        rng.unit_f64() * 2.0 - 1.0
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let s = (-5i32..-2).generate(&mut rng);
            assert!((-5..-2).contains(&s));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let doubled = (0u64..5).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled < 10 && doubled % 2 == 0);
    }

    #[test]
    fn union_picks_all_arms() {
        let mut rng = TestRng::for_case("union", 0);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn exact_vec_length() {
        let mut rng = TestRng::for_case("vec", 0);
        let v = crate::collection::vec(0u8..5, 16usize).generate(&mut rng);
        assert_eq!(v.len(), 16);
    }
}
