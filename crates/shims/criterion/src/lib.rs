//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of criterion's API that the BOTS benches use: `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: every `bench_function` runs a short calibration to
//! pick an iteration count targeting ~50 ms per sample (clamped), then takes
//! `sample_size` samples and reports min / median / mean, plus throughput
//! when configured. Set `BOTS_BENCH_FAST=1` to cut sample counts for CI
//! smoke runs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured body processes this many logical elements per iteration.
    Elements(u64),
    /// The measured body processes this many bytes per iteration.
    Bytes(u64),
}

/// Entry point handed to registered benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (ungrouped).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named set of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `f` and prints a one-line report.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();
        let full = if self.name.is_empty() {
            name
        } else {
            format!("{}/{}", self.name, name)
        };
        let fast = std::env::var("BOTS_BENCH_FAST").is_ok_and(|v| v == "1");
        let samples = if fast {
            self.sample_size.min(10)
        } else {
            self.sample_size
        };

        // Calibrate: grow the per-sample iteration count until a sample
        // takes long enough to time reliably.
        let target = if fast {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(50)
        };
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 20 {
                break;
            }
            // Aim past the target so the first real sample already clears it.
            let grow = (target.as_nanos() as u64 * 2) / b.elapsed.as_nanos().max(1) as u64;
            iters = iters.saturating_mul(grow.clamp(2, 100)).min(1 << 20);
        }

        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>10.3} Melem/s", n as f64 * 1e3 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:>10.3} MiB/s",
                    n as f64 / median * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{full:<44} time: [{} {} {}]{thr}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
        );
    }

    /// Ends the group (reporting is per-function; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Timer handed to the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Registers benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a set of `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("BOTS_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
    }
}
