//! Property tests for SparseLU: the factorisation must reconstruct the
//! original matrix, and every parallel configuration must match the serial
//! factorisation bitwise.

use bots_profile::NullProbe;
use bots_runtime::Runtime;
use bots_sparselu::{
    reconstruction_error, sparselu_parallel, sparselu_serial, BlockMatrix, LuGenerator,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn factorisation_reconstructs(nb in 3usize..9, bs in 2usize..9, seed in any::<u64>()) {
        let m = BlockMatrix::generate(nb, bs, seed);
        let original = m.deep_clone();
        sparselu_serial(&NullProbe, &m);
        let err = reconstruction_error(&m, &original);
        prop_assert!(err < 1e-7, "nb={nb} bs={bs} err={err}");
    }

    #[test]
    fn parallel_matches_serial_bitwise(
        nb in 3usize..9,
        bs in 2usize..9,
        seed in any::<u64>(),
        threads in 1usize..5,
        for_gen in any::<bool>(),
        untied in any::<bool>(),
    ) {
        let reference = BlockMatrix::generate(nb, bs, seed);
        sparselu_serial(&NullProbe, &reference);

        let m = BlockMatrix::generate(nb, bs, seed);
        let rt = Runtime::with_threads(threads);
        let gen = if for_gen { LuGenerator::For } else { LuGenerator::Single };
        sparselu_parallel(&rt, &m, gen, untied);
        prop_assert_eq!(m.digest(), reference.digest());
    }
}
