//! Sequential blocked sparse LU — the reference and the instrumented
//! characterisation run. Emits a potential-task event everywhere the
//! parallel versions spawn ("in each of the sparseLU phases, a task is
//! created for each block of the matrix that is not empty").

use bots_profile::Probe;

use crate::matrix::BlockMatrix;
use crate::ops::{bdiv, bmod, fwd, lu0};

/// Factorises `m` in place, sequentially.
pub fn sparselu_serial<P: Probe>(p: &P, m: &BlockMatrix) {
    let nb = m.nb();
    let bs = m.bs();
    for kk in 0..nb {
        // Safety: single-threaded — every access is exclusive.
        unsafe {
            lu0(p, m.block_mut(kk, kk).expect("diagonal always present"), bs);

            for jj in kk + 1..nb {
                if m.present(kk, jj) {
                    p.task(32);
                    fwd(
                        p,
                        m.block(kk, kk).unwrap(),
                        m.block_mut(kk, jj).unwrap(),
                        bs,
                    );
                }
            }
            for ii in kk + 1..nb {
                if m.present(ii, kk) {
                    p.task(32);
                    bdiv(
                        p,
                        m.block(kk, kk).unwrap(),
                        m.block_mut(ii, kk).unwrap(),
                        bs,
                    );
                }
            }
            p.taskwait();

            for ii in kk + 1..nb {
                if !m.present(ii, kk) {
                    continue;
                }
                for jj in kk + 1..nb {
                    if !m.present(kk, jj) {
                        continue;
                    }
                    m.ensure(ii, jj); // fill-in
                    p.task(48);
                    bmod(
                        p,
                        m.block(ii, kk).unwrap(),
                        m.block(kk, jj).unwrap(),
                        m.block_mut(ii, jj).unwrap(),
                        bs,
                    );
                }
            }
            p.taskwait();
        }
    }
}

/// Dense reconstruction check: `max |(L·U)(r,c) − A(r,c)|` over the full
/// matrix, where `factored` holds packed L (unit diagonal) and U including
/// fill-in, and `original` is the pre-factorisation matrix. O(N³) — use on
/// small inputs only.
pub fn reconstruction_error(factored: &BlockMatrix, original: &BlockMatrix) -> f64 {
    let n = factored.nb() * factored.bs();
    let mut worst = 0.0f64;
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            let kmax = r.min(c);
            for k in 0..kmax {
                acc += factored.element(r, k) * factored.element(k, c);
            }
            acc += if r <= c {
                factored.element(r, c)
            } else {
                factored.element(r, c) * factored.element(c, c)
            };
            worst = worst.max((acc - original.element(r, c)).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_profile::{CountingProbe, NullProbe};

    #[test]
    fn factorisation_reconstructs_original() {
        let m = BlockMatrix::generate(8, 8, 42);
        let original = m.deep_clone();
        sparselu_serial(&NullProbe, &m);
        let err = reconstruction_error(&m, &original);
        assert!(err < 1e-7, "reconstruction error {err}");
    }

    #[test]
    fn fill_in_happens() {
        let m = BlockMatrix::generate(10, 4, 1);
        let before = m.present_count();
        sparselu_serial(&NullProbe, &m);
        assert!(m.present_count() > before, "LU must create fill-in blocks");
    }

    #[test]
    fn deterministic_digest() {
        let a = BlockMatrix::generate(8, 8, 5);
        let b = BlockMatrix::generate(8, 8, 5);
        sparselu_serial(&NullProbe, &a);
        sparselu_serial(&NullProbe, &b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn profile_counts_phase_tasks() {
        let p = CountingProbe::new();
        let m = BlockMatrix::generate(10, 4, 9);
        sparselu_serial(&p, &m);
        let c = p.counts();
        assert!(c.tasks > 0);
        // Two taskwaits per outer iteration.
        assert_eq!(c.taskwaits, 2 * 10);
        // Imbalanced, compute-heavy blocks: many ops per task.
        assert!(c.ops / c.tasks > 50);
    }
}
