//! Task-parallel sparse LU with the two generator schemes of §IV-D, plus
//! a dependency-driven variant:
//!
//! * **single generator** — one task (the region root) walks the block grid
//!   and spawns a task per non-empty block;
//! * **multiple generators** (`omp for`) — the per-phase loops are
//!   worksharing loops, so every team member creates tasks concurrently
//!   ("uses a omp for worksharing to allow multiple threads to create the
//!   tasks for each phase");
//! * **deps** — OpenMP 4.0-style `depend(in/out)` clauses replace the two
//!   per-iteration barriers: each `fwd`/`bdiv` waits only on its own
//!   diagonal, each `bmod` only on its two operands and its target block,
//!   and the next iteration's `lu0` only on the `bmod`s that hit its
//!   diagonal — the sparse data-flow graph, with **no `taskwait` anywhere**
//!   (region quiescence is the final join).
//!
//! Safety discipline for the `UnsafeCell` block accesses (see
//! [`crate::matrix`]): within a phase each task writes exactly one block —
//! its own `(ii, jj)` — and only reads blocks that the ordering guarantees
//! are quiescent. In the barrier versions the ordering is the taskwait
//! barriers between `fwd`/`bdiv`, `bmod`, and the next `lu0`; in the deps
//! version it is the declared block-level clauses, which encode exactly the
//! writer→reader edges the barriers over-approximated. Every write
//! sequence per block still happens in the serial iteration order (writers
//! to one block form a clause chain), so the arithmetic — and the digest —
//! is bit-identical to the serial factorisation.

use bots_profile::NullProbe;
use bots_runtime::{LoopMode, Runtime, Scope, TaskAttrs};

use crate::matrix::BlockMatrix;
use crate::ops::{bdiv, bmod, fwd, lu0};

/// Generator scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuGenerator {
    /// All tasks created by the region root.
    Single,
    /// Tasks created from a worksharing loop over rows.
    For,
    /// All tasks created by the region root with `depend` clauses instead
    /// of barriers: dependency-driven (data-flow) execution.
    Deps,
}

/// Factorises `m` in place on `rt`.
pub fn sparselu_parallel(rt: &Runtime, m: &BlockMatrix, gen: LuGenerator, untied: bool) {
    let attrs = TaskAttrs::default().with_tied(!untied);
    match gen {
        LuGenerator::Single => rt.region(move |s| single_generator(s, m, attrs)).join(),
        LuGenerator::For => rt.region(move |s| for_generator(s, m, attrs)).join(),
        LuGenerator::Deps => rt.region(move |s| deps_generator(s, m, attrs)).join(),
    }
}

/// Factorises `m` in place with the deps generator under a replay shape
/// token ([`Runtime::parallel_replay`]): the first factorisation for
/// `token` records the block-level dependency DAG; later calls re-execute
/// the frozen graph with zero tracker traffic. The token promises the
/// matrix's *structure* — block count and sparsity pattern (which is what
/// determines the clause sequence) — not its values or addresses: a fresh
/// matrix with the same structure replays through address renaming, while
/// a different structure diverges back to live registration (correct, just
/// not accelerated) and re-records on the next call.
pub fn sparselu_parallel_replay(rt: &Runtime, m: &BlockMatrix, token: u64, untied: bool) {
    let attrs = TaskAttrs::default().with_tied(!untied);
    rt.region(move |s| deps_generator(s, m, attrs))
        .replay(token)
        .join();
}

fn single_generator(s: &Scope<'_>, m: &BlockMatrix, attrs: TaskAttrs) {
    let nb = m.nb();
    let bs = m.bs();
    for kk in 0..nb {
        // The diagonal factorisation orders everything in this iteration;
        // it runs in the generator (as in BOTS).
        unsafe { lu0(&NullProbe, m.block_mut(kk, kk).expect("diag present"), bs) };

        s.taskgroup(|s| {
            for jj in kk + 1..nb {
                if m.present(kk, jj) {
                    s.spawn_with(attrs, move |_| unsafe {
                        // Exclusive: one fwd task per (kk, jj).
                        fwd(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(kk, jj).unwrap(),
                            bs,
                        );
                    });
                }
            }
            for ii in kk + 1..nb {
                if m.present(ii, kk) {
                    s.spawn_with(attrs, move |_| unsafe {
                        bdiv(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(ii, kk).unwrap(),
                            bs,
                        );
                    });
                }
            }
        });

        s.taskgroup(|s| {
            for ii in kk + 1..nb {
                if !m.present(ii, kk) {
                    continue;
                }
                for jj in kk + 1..nb {
                    if !m.present(kk, jj) {
                        continue;
                    }
                    // Fill-in allocated by the generator before the task for
                    // this block exists.
                    unsafe { m.ensure(ii, jj) };
                    s.spawn_with(attrs, move |_| unsafe {
                        bmod(
                            &NullProbe,
                            m.block(ii, kk).unwrap(),
                            m.block(kk, jj).unwrap(),
                            m.block_mut(ii, jj).unwrap(),
                            bs,
                        );
                    });
                }
            }
        });
    }
}

/// The data-flow factorisation: every task declares block-level `depend`
/// clauses and the two per-iteration `taskwait` barriers disappear —
/// `lu0(kk)` can start the moment the last `bmod` into `(kk, kk)` retires,
/// while unrelated `bmod`s of iteration `kk-1` are still in flight.
///
/// Clause map (`m.dep(i, j)` is block `(i, j)`'s address token):
///
/// | task | in | out |
/// |---|---|---|
/// | `lu0(kk)` | — | `(kk, kk)` |
/// | `fwd(kk, jj)` | `(kk, kk)` | `(kk, jj)` |
/// | `bdiv(ii, kk)` | `(kk, kk)` | `(ii, kk)` |
/// | `bmod(ii, jj)` | `(ii, kk)`, `(kk, jj)` | `(ii, jj)` |
///
/// Writers to one block form a clause chain in spawn order — the serial
/// iteration order — so each block's update sequence (and therefore the
/// floating-point result) is bit-identical to the serial factorisation.
/// Fill-in is still allocated by the generator (`ensure` touches only the
/// slot's presence, never block data; the first `ensure` of a block
/// happens-before any task naming it is published).
fn deps_generator<'e>(s: &Scope<'e>, m: &'e BlockMatrix, attrs: TaskAttrs) {
    let nb = m.nb();
    let bs = m.bs();
    for kk in 0..nb {
        s.task(move |_| unsafe {
            // Exclusive: the out-clause chain on (kk, kk) orders this
            // after every bmod that updated the diagonal.
            lu0(&NullProbe, m.block_mut(kk, kk).expect("diag present"), bs);
        })
        .with_attrs(attrs)
        .after_write(m.dep(kk, kk))
        .spawn();

        for jj in kk + 1..nb {
            if m.present(kk, jj) {
                s.task(move |_| unsafe {
                    fwd(
                        &NullProbe,
                        m.block(kk, kk).unwrap(),
                        m.block_mut(kk, jj).unwrap(),
                        bs,
                    );
                })
                .with_attrs(attrs)
                .after_read(m.dep(kk, kk))
                .after_write(m.dep(kk, jj))
                .spawn();
            }
        }
        for ii in kk + 1..nb {
            if m.present(ii, kk) {
                s.task(move |_| unsafe {
                    bdiv(
                        &NullProbe,
                        m.block(kk, kk).unwrap(),
                        m.block_mut(ii, kk).unwrap(),
                        bs,
                    );
                })
                .with_attrs(attrs)
                .after_read(m.dep(kk, kk))
                .after_write(m.dep(ii, kk))
                .spawn();
            }
        }
        for ii in kk + 1..nb {
            if !m.present(ii, kk) {
                continue;
            }
            for jj in kk + 1..nb {
                if !m.present(kk, jj) {
                    continue;
                }
                // Fill-in allocated by the generator before any task
                // naming (ii, jj) is published.
                unsafe { m.ensure(ii, jj) };
                s.task(move |_| unsafe {
                    bmod(
                        &NullProbe,
                        m.block(ii, kk).unwrap(),
                        m.block(kk, jj).unwrap(),
                        m.block_mut(ii, jj).unwrap(),
                        bs,
                    );
                })
                .with_attrs(attrs)
                .after_read(m.dep(ii, kk))
                .after_read(m.dep(kk, jj))
                .after_write(m.dep(ii, jj))
                .spawn();
            }
        }
        // No taskwait: the next iteration's tasks order themselves through
        // their clauses; region quiescence is the only join.
    }
}

fn for_generator(s: &Scope<'_>, m: &BlockMatrix, attrs: TaskAttrs) {
    let nb = m.nb();
    let bs = m.bs();
    for kk in 0..nb {
        unsafe { lu0(&NullProbe, m.block_mut(kk, kk).expect("diag present"), bs) };

        // Phase 1 worksharing: the fwd/bdiv candidates are distributed over
        // the team; each iteration spawns at most one task.
        s.taskgroup(|s| {
            s.for_each(kk + 1..nb, move |x, s| {
                if m.present(kk, x) {
                    s.spawn_with(attrs, move |_| unsafe {
                        fwd(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(kk, x).unwrap(),
                            bs,
                        );
                    });
                }
                if m.present(x, kk) {
                    s.spawn_with(attrs, move |_| unsafe {
                        bdiv(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(x, kk).unwrap(),
                            bs,
                        );
                    });
                }
            })
            .mode(LoopMode::Worksharing)
            .run();
        });

        // Phase 2 worksharing over rows: each generator iteration owns row
        // ii, allocates its fill-in and spawns its bmod tasks.
        s.taskgroup(|s| {
            s.for_each(kk + 1..nb, move |ii, s| {
                if !m.present(ii, kk) {
                    return;
                }
                for jj in kk + 1..nb {
                    if !m.present(kk, jj) {
                        continue;
                    }
                    unsafe { m.ensure(ii, jj) };
                    s.spawn_with(attrs, move |_| unsafe {
                        bmod(
                            &NullProbe,
                            m.block(ii, kk).unwrap(),
                            m.block(kk, jj).unwrap(),
                            m.block_mut(ii, jj).unwrap(),
                            bs,
                        );
                    });
                }
            })
            .mode(LoopMode::Worksharing)
            .run();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{reconstruction_error, sparselu_serial};

    #[test]
    fn all_generators_match_serial_bitwise() {
        let reference = BlockMatrix::generate(8, 8, 42);
        sparselu_serial(&NullProbe, &reference);
        let want = reference.digest();

        let rt = Runtime::with_threads(4);
        for gen in [LuGenerator::Single, LuGenerator::For, LuGenerator::Deps] {
            for untied in [false, true] {
                let m = BlockMatrix::generate(8, 8, 42);
                sparselu_parallel(&rt, &m, gen, untied);
                assert_eq!(m.digest(), want, "gen={gen:?} untied={untied}");
            }
        }
    }

    /// The data-flow variant replaces the per-iteration barriers entirely:
    /// zero `taskwait`s are executed on its behalf, the dependency
    /// telemetry shows real deferrals, and the digest still matches the
    /// serial factorisation bit for bit.
    #[test]
    fn deps_variant_runs_barrier_free() {
        let reference = BlockMatrix::generate(8, 8, 42);
        sparselu_serial(&NullProbe, &reference);

        let rt = Runtime::with_threads(4);
        let before = rt.stats();
        let m = BlockMatrix::generate(8, 8, 42);
        sparselu_parallel(&rt, &m, LuGenerator::Deps, false);
        let d = rt.stats().since(&before);
        assert_eq!(m.digest(), reference.digest());
        assert_eq!(d.taskwaits, 0, "the deps kernel must not taskwait");
        assert_eq!(d.group_waits, 0, "nor open a taskgroup");
        assert!(d.deps_registered > 0);
        assert_eq!(
            d.deps_deferred, d.deps_released,
            "every deferred task released exactly once"
        );
        assert!(
            d.deps_deferred > 0,
            "the LU graph must actually defer tasks"
        );
    }

    /// Record-and-replay over the deps generator: fresh matrices of the
    /// same structure replay the frozen graph (address renaming — the
    /// blocks live at new addresses every round) and stay bit-identical
    /// to the serial factorisation; a structurally different matrix under
    /// the same token diverges back to live registration and still
    /// factorises correctly.
    #[test]
    fn replayed_factorisations_match_serial_bitwise() {
        let reference = BlockMatrix::generate(8, 8, 42);
        sparselu_serial(&NullProbe, &reference);
        let want = reference.digest();

        const TOKEN: u64 = 0x51;
        let rt = Runtime::with_threads(4);
        let before = rt.stats();
        for round in 0..4 {
            let m = BlockMatrix::generate(8, 8, 42);
            sparselu_parallel_replay(&rt, &m, TOKEN, false);
            assert_eq!(m.digest(), want, "round {round}");
        }
        let d = rt.stats().since(&before);
        assert_eq!(d.replays_recorded, 1);
        assert_eq!(d.replays_hit, 3, "warm rounds must replay");
        assert_eq!(d.replays_diverged, 0);
        assert_eq!(d.taskwaits, 0, "replay keeps the kernel barrier-free");

        let other_reference = BlockMatrix::generate(6, 8, 17);
        sparselu_serial(&NullProbe, &other_reference);
        let m = BlockMatrix::generate(6, 8, 17);
        sparselu_parallel_replay(&rt, &m, TOKEN, false);
        assert_eq!(m.digest(), other_reference.digest());
        assert_eq!(rt.stats().since(&before).replays_diverged, 1);
    }

    /// On one thread the dependency graph forces the serial visit order —
    /// a `fwd → bmod → bdiv`-style chain runs in dependency order even
    /// though LIFO popping would reverse plain spawns.
    #[test]
    fn deps_variant_single_thread_matches() {
        let rt = Runtime::with_threads(1);
        let reference = BlockMatrix::generate(6, 4, 3);
        sparselu_serial(&NullProbe, &reference);
        let m = BlockMatrix::generate(6, 4, 3);
        sparselu_parallel(&rt, &m, LuGenerator::Deps, false);
        assert_eq!(m.digest(), reference.digest());
    }

    #[test]
    fn parallel_factorisation_reconstructs() {
        let rt = Runtime::with_threads(4);
        let m = BlockMatrix::generate(6, 8, 17);
        let original = m.deep_clone();
        sparselu_parallel(&rt, &m, LuGenerator::Single, false);
        let err = reconstruction_error(&m, &original);
        assert!(err < 1e-7, "reconstruction error {err}");
    }

    #[test]
    fn single_thread_team() {
        let rt = Runtime::with_threads(1);
        let reference = BlockMatrix::generate(6, 4, 3);
        sparselu_serial(&NullProbe, &reference);
        let m = BlockMatrix::generate(6, 4, 3);
        sparselu_parallel(&rt, &m, LuGenerator::For, false);
        assert_eq!(m.digest(), reference.digest());
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let rt = Runtime::with_threads(8);
        let mut digests = Vec::new();
        for _ in 0..3 {
            let m = BlockMatrix::generate(10, 4, 5);
            sparselu_parallel(&rt, &m, LuGenerator::For, true);
            digests.push(m.digest());
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }
}
