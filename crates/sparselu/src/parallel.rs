//! Task-parallel sparse LU with the two generator schemes of §IV-D:
//!
//! * **single generator** — one task (the region root) walks the block grid
//!   and spawns a task per non-empty block;
//! * **multiple generators** (`omp for`) — the per-phase loops are
//!   worksharing loops, so every team member creates tasks concurrently
//!   ("uses a omp for worksharing to allow multiple threads to create the
//!   tasks for each phase").
//!
//! Safety discipline for the `UnsafeCell` block accesses (see
//! [`crate::matrix`]): within a phase each task writes exactly one block —
//! its own `(ii, jj)` — and only reads blocks that the phase ordering
//! (taskwait barriers between `fwd`/`bdiv`, `bmod`, and the next `lu0`)
//! guarantees are quiescent.

use bots_profile::NullProbe;
use bots_runtime::{Runtime, Scope, TaskAttrs};

use crate::matrix::BlockMatrix;
use crate::ops::{bdiv, bmod, fwd, lu0};

/// Generator scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuGenerator {
    /// All tasks created by the region root.
    Single,
    /// Tasks created from a worksharing loop over rows.
    For,
}

/// Factorises `m` in place on `rt`.
pub fn sparselu_parallel(rt: &Runtime, m: &BlockMatrix, gen: LuGenerator, untied: bool) {
    let attrs = TaskAttrs::default().with_tied(!untied);
    match gen {
        LuGenerator::Single => rt.parallel(move |s| single_generator(s, m, attrs)),
        LuGenerator::For => rt.parallel(move |s| for_generator(s, m, attrs)),
    }
}

fn single_generator(s: &Scope<'_>, m: &BlockMatrix, attrs: TaskAttrs) {
    let nb = m.nb();
    let bs = m.bs();
    for kk in 0..nb {
        // The diagonal factorisation orders everything in this iteration;
        // it runs in the generator (as in BOTS).
        unsafe { lu0(&NullProbe, m.block_mut(kk, kk).expect("diag present"), bs) };

        s.taskgroup(|s| {
            for jj in kk + 1..nb {
                if m.present(kk, jj) {
                    s.spawn_with(attrs, move |_| unsafe {
                        // Exclusive: one fwd task per (kk, jj).
                        fwd(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(kk, jj).unwrap(),
                            bs,
                        );
                    });
                }
            }
            for ii in kk + 1..nb {
                if m.present(ii, kk) {
                    s.spawn_with(attrs, move |_| unsafe {
                        bdiv(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(ii, kk).unwrap(),
                            bs,
                        );
                    });
                }
            }
        });

        s.taskgroup(|s| {
            for ii in kk + 1..nb {
                if !m.present(ii, kk) {
                    continue;
                }
                for jj in kk + 1..nb {
                    if !m.present(kk, jj) {
                        continue;
                    }
                    // Fill-in allocated by the generator before the task for
                    // this block exists.
                    unsafe { m.ensure(ii, jj) };
                    s.spawn_with(attrs, move |_| unsafe {
                        bmod(
                            &NullProbe,
                            m.block(ii, kk).unwrap(),
                            m.block(kk, jj).unwrap(),
                            m.block_mut(ii, jj).unwrap(),
                            bs,
                        );
                    });
                }
            }
        });
    }
}

fn for_generator(s: &Scope<'_>, m: &BlockMatrix, attrs: TaskAttrs) {
    let nb = m.nb();
    let bs = m.bs();
    for kk in 0..nb {
        unsafe { lu0(&NullProbe, m.block_mut(kk, kk).expect("diag present"), bs) };

        // Phase 1 worksharing: the fwd/bdiv candidates are distributed over
        // the team; each iteration spawns at most one task.
        s.taskgroup(|s| {
            s.parallel_for(kk + 1..nb, move |x, s| {
                if m.present(kk, x) {
                    s.spawn_with(attrs, move |_| unsafe {
                        fwd(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(kk, x).unwrap(),
                            bs,
                        );
                    });
                }
                if m.present(x, kk) {
                    s.spawn_with(attrs, move |_| unsafe {
                        bdiv(
                            &NullProbe,
                            m.block(kk, kk).unwrap(),
                            m.block_mut(x, kk).unwrap(),
                            bs,
                        );
                    });
                }
            });
        });

        // Phase 2 worksharing over rows: each generator iteration owns row
        // ii, allocates its fill-in and spawns its bmod tasks.
        s.taskgroup(|s| {
            s.parallel_for(kk + 1..nb, move |ii, s| {
                if !m.present(ii, kk) {
                    return;
                }
                for jj in kk + 1..nb {
                    if !m.present(kk, jj) {
                        continue;
                    }
                    unsafe { m.ensure(ii, jj) };
                    s.spawn_with(attrs, move |_| unsafe {
                        bmod(
                            &NullProbe,
                            m.block(ii, kk).unwrap(),
                            m.block(kk, jj).unwrap(),
                            m.block_mut(ii, jj).unwrap(),
                            bs,
                        );
                    });
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{reconstruction_error, sparselu_serial};

    #[test]
    fn both_generators_match_serial_bitwise() {
        let reference = BlockMatrix::generate(8, 8, 42);
        sparselu_serial(&NullProbe, &reference);
        let want = reference.digest();

        let rt = Runtime::with_threads(4);
        for gen in [LuGenerator::Single, LuGenerator::For] {
            for untied in [false, true] {
                let m = BlockMatrix::generate(8, 8, 42);
                sparselu_parallel(&rt, &m, gen, untied);
                assert_eq!(m.digest(), want, "gen={gen:?} untied={untied}");
            }
        }
    }

    #[test]
    fn parallel_factorisation_reconstructs() {
        let rt = Runtime::with_threads(4);
        let m = BlockMatrix::generate(6, 8, 17);
        let original = m.deep_clone();
        sparselu_parallel(&rt, &m, LuGenerator::Single, false);
        let err = reconstruction_error(&m, &original);
        assert!(err < 1e-7, "reconstruction error {err}");
    }

    #[test]
    fn single_thread_team() {
        let rt = Runtime::with_threads(1);
        let reference = BlockMatrix::generate(6, 4, 3);
        sparselu_serial(&NullProbe, &reference);
        let m = BlockMatrix::generate(6, 4, 3);
        sparselu_parallel(&rt, &m, LuGenerator::For, false);
        assert_eq!(m.digest(), reference.digest());
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let rt = Runtime::with_threads(8);
        let mut digests = Vec::new();
        for _ in 0..3 {
            let m = BlockMatrix::generate(10, 4, 5);
            sparselu_parallel(&rt, &m, LuGenerator::For, true);
            digests.push(m.digest());
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }
}
