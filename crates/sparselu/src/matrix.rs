//! The sparse block matrix: an NB×NB grid of optional BS×BS dense blocks.
//!
//! "A first level matrix is composed by pointers to small submatrices that
//! may not be allocated" (§III-B). During factorisation, different tasks
//! update *different* blocks of the same matrix concurrently, and the
//! generator allocates fill-in blocks between phases. Rust cannot express
//! that disjointness through `&mut` borrows of one `Vec`, so the slots use
//! `UnsafeCell` with a small audited accessor surface; every caller states
//! which phase-level invariant makes its access exclusive.

use std::cell::UnsafeCell;

use bots_inputs::blockmatrix::{bots_block_present, fill_block};

/// One optional block behind interior mutability. Public but opaque: a
/// `&Slot` doubles as the block's **dependency token** — a stable address
/// identifying block `(ii, jj)` for `depend(in/out)` clauses (see
/// [`BlockMatrix::dep`]); the runtime never dereferences it.
pub struct Slot(UnsafeCell<Option<Box<[f64]>>>);

// Safety: slots are shared across worker threads; all concurrent access
// discipline is enforced by the factorisation phase structure (documented
// on each accessor).
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

/// Sparse block matrix (see module docs).
pub struct BlockMatrix {
    nb: usize,
    bs: usize,
    slots: Vec<Slot>,
}

impl BlockMatrix {
    /// Builds the BOTS `genmat` structure: `nb`×`nb` blocks of side `bs`,
    /// present per the canonical sparsity pattern, filled deterministically
    /// from `seed`.
    pub fn generate(nb: usize, bs: usize, seed: u64) -> Self {
        let mut slots = Vec::with_capacity(nb * nb);
        for ii in 0..nb {
            for jj in 0..nb {
                let content = if bots_block_present(ii, jj) {
                    Some(fill_block(ii, jj, bs, seed).into_boxed_slice())
                } else {
                    None
                };
                slots.push(Slot(UnsafeCell::new(content)));
            }
        }
        BlockMatrix { nb, bs, slots }
    }

    /// Empty matrix (all blocks absent); used by tests.
    pub fn empty(nb: usize, bs: usize) -> Self {
        let slots = (0..nb * nb).map(|_| Slot(UnsafeCell::new(None))).collect();
        BlockMatrix { nb, bs, slots }
    }

    /// Blocks per side.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Block side length.
    pub fn bs(&self) -> usize {
        self.bs
    }

    #[inline]
    fn slot(&self, ii: usize, jj: usize) -> &Slot {
        &self.slots[ii * self.nb + jj]
    }

    /// Dependency token for block `(ii, jj)`: a stable address naming the
    /// block in `depend` clauses (`TaskBuilder::after_read/after_write`).
    /// Valid whether or not the block is allocated yet — the token is the
    /// slot, not the data — so fill-in blocks can be named before their
    /// first `ensure`.
    pub fn dep(&self, ii: usize, jj: usize) -> &Slot {
        self.slot(ii, jj)
    }

    /// Is block `(ii, jj)` present?
    ///
    /// Safety of the internal read: structure mutation ([`Self::ensure`]) only
    /// happens in the generator between/before the tasks that read the same
    /// coordinates, so presence is stable whenever tasks ask.
    pub fn present(&self, ii: usize, jj: usize) -> bool {
        unsafe { (*self.slot(ii, jj).0.get()).is_some() }
    }

    /// Shared view of a block.
    ///
    /// # Safety
    /// No concurrent mutable access to the same block may exist. In the
    /// factorisation this holds because within a phase each block is either
    /// read-only (pivot row/column, already factored) or written by exactly
    /// one task.
    pub unsafe fn block(&self, ii: usize, jj: usize) -> Option<&[f64]> {
        (*self.slot(ii, jj).0.get()).as_deref()
    }

    /// Exclusive view of a block.
    ///
    /// # Safety
    /// The caller must be the only accessor of this block for the duration
    /// of the borrow (phase discipline: one task per target block).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn block_mut(&self, ii: usize, jj: usize) -> Option<&mut [f64]> {
        (*self.slot(ii, jj).0.get()).as_deref_mut()
    }

    /// Allocates block `(ii, jj)` as zeros if absent (LU fill-in).
    ///
    /// # Safety
    /// Only a generator may call this, and only while no task accesses the
    /// same coordinates (fill-in happens before the bmod task for the block
    /// is spawned).
    pub unsafe fn ensure(&self, ii: usize, jj: usize) {
        let slot = self.slot(ii, jj).0.get();
        if (*slot).is_none() {
            *slot = Some(vec![0.0; self.bs * self.bs].into_boxed_slice());
        }
    }

    /// Number of present blocks.
    pub fn present_count(&self) -> usize {
        (0..self.nb * self.nb)
            .filter(|k| self.present(k / self.nb, k % self.nb))
            .count()
    }

    /// Reads one scalar element of the full `nb·bs` square matrix (absent
    /// blocks read as zero). For verification only (single-threaded).
    pub fn element(&self, r: usize, c: usize) -> f64 {
        let (bi, br) = (r / self.bs, r % self.bs);
        let (bj, bc) = (c / self.bs, c % self.bs);
        unsafe { self.block(bi, bj) }.map_or(0.0, |b| b[br * self.bs + bc])
    }

    /// Order-independent digest of the matrix content (single-threaded).
    pub fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for ii in 0..self.nb {
            for jj in 0..self.nb {
                if let Some(b) = unsafe { self.block(ii, jj) } {
                    for (k, &v) in b.iter().enumerate() {
                        let v = if v == 0.0 { 0.0 } else { v };
                        let h = bots_suite::fnv1a(&v.to_bits().to_le_bytes());
                        acc ^= h.rotate_left(((ii * 31 + jj * 7 + k) % 63) as u32);
                    }
                }
            }
        }
        acc
    }

    /// Deep copy (single-threaded contexts only).
    pub fn deep_clone(&self) -> BlockMatrix {
        let slots = (0..self.nb * self.nb)
            .map(|k| {
                let (ii, jj) = (k / self.nb, k % self.nb);
                let content = unsafe { self.block(ii, jj) }.map(|b| b.to_vec().into_boxed_slice());
                Slot(UnsafeCell::new(content))
            })
            .collect();
        BlockMatrix {
            nb: self.nb,
            bs: self.bs,
            slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_follows_pattern() {
        let m = BlockMatrix::generate(10, 4, 42);
        for ii in 0..10 {
            for jj in 0..10 {
                assert_eq!(m.present(ii, jj), bots_block_present(ii, jj), "({ii},{jj})");
            }
        }
    }

    #[test]
    fn ensure_allocates_zeros() {
        let m = BlockMatrix::empty(3, 4);
        assert!(!m.present(1, 2));
        unsafe { m.ensure(1, 2) };
        assert!(m.present(1, 2));
        let b = unsafe { m.block(1, 2) }.unwrap();
        assert!(b.iter().all(|&v| v == 0.0));
        // Idempotent.
        unsafe { m.ensure(1, 2) };
        assert!(m.present(1, 2));
    }

    #[test]
    fn element_reads_through_blocks() {
        let m = BlockMatrix::generate(4, 8, 7);
        let b00 = unsafe { m.block(0, 0) }.unwrap();
        assert_eq!(m.element(3, 5), b00[3 * 8 + 5]);
        // An absent block reads zero.
        let absent = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .find(|&(i, j)| !m.present(i, j))
            .expect("pattern has holes");
        assert_eq!(m.element(absent.0 * 8, absent.1 * 8), 0.0);
    }

    #[test]
    fn digest_detects_changes() {
        let m = BlockMatrix::generate(6, 4, 1);
        let d1 = m.digest();
        let c = m.deep_clone();
        assert_eq!(d1, c.digest());
        unsafe {
            let b = c.block_mut(0, 0).unwrap();
            b[0] += 1.0;
        }
        assert_ne!(d1, c.digest());
    }
}
