//! `Benchmark` wiring for SparseLU.

use bots_inputs::InputClass;
use bots_profile::{CountingProbe, NullProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{BenchMeta, Benchmark, Generator, RunOutput, Tiedness, Verification, VersionSpec};

use crate::matrix::BlockMatrix;
use crate::parallel::{sparselu_parallel, LuGenerator};
use crate::serial::sparselu_serial;

/// `(blocks per side, block side)` per class.
pub fn dims_for(class: InputClass) -> (usize, usize) {
    class.pick([(10, 25), (32, 50), (50, 64), (64, 100)])
}

const SEED: u64 = 0x51u64 << 32 | 0xA45E;

/// SparseLU as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct SparseLuBench;

impl Benchmark for SparseLuBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "SparseLU",
            origin: "-",
            domain: "Sparse linear algebra",
            structure: "Iterative",
            task_directives: 4,
            tasks_inside: "single/for/deps",
            nested_tasks: false,
            app_cutoff: "none",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        let (nb, bs) = dims_for(class);
        format!("{0}x{0} sparse matrix of {1}x{1} blocks", nb * bs, bs)
    }

    fn versions(&self) -> Vec<VersionSpec> {
        // No app cut-off; the axes are generator scheme × tiedness. The
        // `deps` rows are the data-flow extension: block-level
        // depend(in/out) clauses instead of the two per-iteration
        // barriers, cross-verified against the serial digest like the
        // rest.
        vec![
            VersionSpec::default(),
            VersionSpec::default().tied(Tiedness::Untied),
            VersionSpec::default().generator(Generator::For),
            VersionSpec::default()
                .generator(Generator::For)
                .tied(Tiedness::Untied),
            VersionSpec::default().generator(Generator::Deps),
            VersionSpec::default()
                .generator(Generator::Deps)
                .tied(Tiedness::Untied),
        ]
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let (nb, bs) = dims_for(class);
        let m = BlockMatrix::generate(nb, bs, SEED);
        sparselu_serial(&NullProbe, &m);
        RunOutput::new(m.digest(), format!("LU of {} blocks", m.present_count()))
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let (nb, bs) = dims_for(class);
        let m = BlockMatrix::generate(nb, bs, SEED);
        let gen = match version.generator {
            Generator::Single => LuGenerator::Single,
            Generator::For => LuGenerator::For,
            Generator::Deps => LuGenerator::Deps,
        };
        sparselu_parallel(rt, &m, gen, version.tiedness == Tiedness::Untied);
        RunOutput::new(m.digest(), format!("LU of {} blocks", m.present_count()))
    }

    fn verify(&self, _class: InputClass, _output: &RunOutput) -> Verification {
        // Phase barriers — or, in the deps versions, the per-block clause
        // chains — make the arithmetic identical to the serial run; the
        // runner compares digests. (The LU-reconstruction residual is
        // additionally asserted in this crate's tests.)
        Verification::AgainstSerial
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let (nb, bs) = dims_for(class);
        let m = BlockMatrix::generate(nb, bs, SEED);
        let p = CountingProbe::new();
        sparselu_serial(&p, &m);
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3: "sparselu (for-tied)".
        VersionSpec::default().generator(Generator::For)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_suite::runner;

    #[test]
    fn all_versions_verify() {
        let b = SparseLuBench;
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            runner::verify(&b, InputClass::Test, &out).unwrap();
        }
    }

    #[test]
    fn characterization_shows_imbalance_profile() {
        let c = SparseLuBench.characterize(InputClass::Test);
        // Coarse tasks: high ops/task (paper: ≃11 M on medium).
        assert!(c.ops / c.tasks > 1000, "ops/task = {}", c.ops / c.tasks);
        // ~half the writes hit shared data in the paper (49.46%); ours are
        // all matrix-block writes, i.e. non-private.
        assert!(c.writes_shared > 0);
    }

    #[test]
    fn meta_lists_all_generators() {
        assert_eq!(SparseLuBench.meta().tasks_inside, "single/for/deps");
        assert_eq!(SparseLuBench.versions().len(), 6);
        assert!(SparseLuBench
            .versions()
            .iter()
            .any(|v| v.generator == Generator::Deps));
    }
}
