//! # bots-sparselu — the BOTS SparseLU kernel
//!
//! Blocked LU factorisation of a sparse matrix of pointers to dense
//! blocks. Each outer iteration factorises the diagonal block (`lu0`),
//! solves the pivot row and column (`fwd`/`bdiv`, one task per non-empty
//! block), then updates the trailing submatrix (`bmod`, one task per
//! non-empty pair) — with fill-in allocation between phases. The sparsity
//! pattern is the BOTS `genmat` pattern, so the per-phase imbalance the
//! kernel exists to exercise is preserved.
//!
//! Ships in single-generator and `omp for`-style multiple-generator
//! versions (the §IV-D comparison).
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_sparselu::{BlockMatrix, sparselu_parallel, LuGenerator};
//!
//! let rt = Runtime::with_threads(2);
//! let m = BlockMatrix::generate(6, 8, 42);
//! sparselu_parallel(&rt, &m, LuGenerator::Single, false);
//! ```
#![warn(missing_docs)]

mod bench;
mod matrix;
mod ops;
mod parallel;
mod serial;

pub use bench::{dims_for, SparseLuBench};
pub use matrix::{BlockMatrix, Slot};
pub use ops::{bdiv, bmod, fwd, lu0};
pub use parallel::{sparselu_parallel, sparselu_parallel_replay, LuGenerator};
pub use serial::{reconstruction_error, sparselu_serial};
