//! The four block kernels of the factorisation: `lu0` (diagonal LU),
//! `fwd` (forward solve applied to a row block), `bdiv` (backward solve
//! applied to a column block), `bmod` (trailing update). Straight ports of
//! the BOTS routines, instrumented.

use bots_profile::Probe;

/// Unpivoted in-place LU of the diagonal block (`bs`×`bs`).
pub fn lu0<P: Probe>(p: &P, diag: &mut [f64], bs: usize) {
    for k in 0..bs {
        let pivot = diag[k * bs + k];
        debug_assert!(pivot != 0.0, "zero pivot at {k}");
        for i in k + 1..bs {
            diag[i * bs + k] /= pivot;
            let lik = diag[i * bs + k];
            for j in k + 1..bs {
                diag[i * bs + j] -= lik * diag[k * bs + j];
            }
        }
    }
    let ops = (2 * bs * bs * bs) as u64 / 3;
    p.ops(ops);
    p.write_shared((bs * bs) as u64);
}

/// Applies `L⁻¹` (unit lower triangle of the factored diagonal) to a block
/// on the pivot row: `row ← L⁻¹ · row`.
pub fn fwd<P: Probe>(p: &P, diag: &[f64], row: &mut [f64], bs: usize) {
    for k in 0..bs {
        for i in k + 1..bs {
            let lik = diag[i * bs + k];
            for j in 0..bs {
                row[i * bs + j] -= lik * row[k * bs + j];
            }
        }
    }
    p.ops((bs * bs * bs) as u64);
    p.write_shared((bs * bs) as u64);
}

/// Applies `U⁻¹` (upper triangle of the factored diagonal) from the right
/// to a block on the pivot column: `col ← col · U⁻¹`.
pub fn bdiv<P: Probe>(p: &P, diag: &[f64], col: &mut [f64], bs: usize) {
    for i in 0..bs {
        for k in 0..bs {
            col[i * bs + k] /= diag[k * bs + k];
            let cik = col[i * bs + k];
            for j in k + 1..bs {
                col[i * bs + j] -= cik * diag[k * bs + j];
            }
        }
    }
    p.ops((bs * bs * bs) as u64);
    p.write_shared((bs * bs) as u64);
}

/// Trailing-submatrix update: `inner ← inner − row·col`.
pub fn bmod<P: Probe>(p: &P, row: &[f64], col: &[f64], inner: &mut [f64], bs: usize) {
    for i in 0..bs {
        for k in 0..bs {
            let rik = row[i * bs + k];
            for j in 0..bs {
                inner[i * bs + j] -= rik * col[k * bs + j];
            }
        }
    }
    p.ops((2 * bs * bs * bs) as u64);
    p.write_shared((bs * bs) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_profile::NullProbe;

    /// Multiplies the L and U factors packed in one block back together.
    fn lu_product(factored: &[f64], bs: usize) -> Vec<f64> {
        let mut out = vec![0.0; bs * bs];
        for i in 0..bs {
            for j in 0..bs {
                let mut acc = 0.0;
                // L has implicit unit diagonal; U is the upper triangle.
                let kmax = i.min(j);
                for k in 0..kmax {
                    acc += factored[i * bs + k] * factored[k * bs + j];
                }
                acc += if i <= j {
                    factored[i * bs + j] // L[i][i] = 1 ⇒ term is U[i][j]
                } else {
                    factored[i * bs + j] * factored[j * bs + j] // L[i][j]·U[j][j]
                };
                out[i * bs + j] = acc;
            }
        }
        out
    }

    fn dominant_block(bs: usize, seed: u64) -> Vec<f64> {
        bots_inputs::blockmatrix::fill_block(0, 0, bs, seed)
    }

    #[test]
    fn lu0_factorisation_reconstructs() {
        let bs = 16;
        let orig = dominant_block(bs, 3);
        let mut fac = orig.clone();
        lu0(&NullProbe, &mut fac, bs);
        let back = lu_product(&fac, bs);
        for (a, b) in back.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fwd_solves_lower_system() {
        let bs = 12;
        let mut diag = dominant_block(bs, 5);
        lu0(&NullProbe, &mut diag, bs);
        // Build B, apply fwd to get X with L·X = B; check L·X == B.
        let b0: Vec<f64> = (0..bs * bs).map(|i| (i % 11) as f64 - 5.0).collect();
        let mut x = b0.clone();
        fwd(&NullProbe, &diag, &mut x, bs);
        for i in 0..bs {
            for j in 0..bs {
                let mut acc = x[i * bs + j];
                for k in 0..i {
                    acc += diag[i * bs + k] * x[k * bs + j];
                }
                assert!((acc - b0[i * bs + j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn bdiv_solves_upper_system() {
        let bs = 12;
        let mut diag = dominant_block(bs, 6);
        lu0(&NullProbe, &mut diag, bs);
        let b0: Vec<f64> = (0..bs * bs).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut x = b0.clone();
        bdiv(&NullProbe, &diag, &mut x, bs);
        // Check X·U == B.
        for i in 0..bs {
            for j in 0..bs {
                let mut acc = 0.0;
                for k in 0..=j {
                    let u = if k <= j { diag[k * bs + j] } else { 0.0 };
                    acc += x[i * bs + k] * u;
                }
                assert!((acc - b0[i * bs + j]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn bmod_is_multiply_subtract() {
        let bs = 8;
        let row: Vec<f64> = (0..bs * bs).map(|i| (i % 5) as f64).collect();
        let col: Vec<f64> = (0..bs * bs).map(|i| ((i * 3) % 7) as f64).collect();
        let mut inner = vec![1.0; bs * bs];
        bmod(&NullProbe, &row, &col, &mut inner, bs);
        for i in 0..bs {
            for j in 0..bs {
                let mut expect = 1.0;
                for k in 0..bs {
                    expect -= row[i * bs + k] * col[k * bs + j];
                }
                assert!((inner[i * bs + j] - expect).abs() < 1e-10);
            }
        }
    }
}
