//! Repo automation tasks (`cargo xtask <task>`, via the `.cargo/config.toml`
//! alias). Two tasks, both CI-required:
//!
//! * **`lint`** — the atomic-ordering audit of the five lock-free protocol
//!   files (`injector.rs`, `slab.rs`, `group.rs`, `deps.rs`, `cont.rs`):
//!   every `Ordering::Relaxed` in non-test code must carry a
//!   `// relaxed-ok:` justification (same line or within the six preceding
//!   lines) and every `compare_exchange` a `// transition:` comment
//!   stating the protocol-state transition the CAS performs. Unjustified
//!   orderings fail the build: a Relaxed that nobody can justify is either
//!   a latent reordering bug or a missing piece of the protocol's
//!   documentation, and both block merging.
//!
//! * **`tla-check`** — sanity for the TLA+ specs under `specs/tla/`: each
//!   spec must exist, its `MODULE` header must match the filename, the
//!   module must be terminated, the W1/W2/W6 invariants must be defined
//!   in the spec and referenced by its `.cfg`. When a `tla2sany` binary is
//!   on `PATH` the specs are additionally run through the real TLA+
//!   syntax checker. This keeps the specs from silently rotting in a tree
//!   where TLC is usually not installed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The five protocol files the ordering lint audits, relative to the
/// workspace root.
const PROTOCOL_FILES: [&str; 5] = [
    "crates/runtime/src/injector.rs",
    "crates/runtime/src/slab.rs",
    "crates/runtime/src/group.rs",
    "crates/runtime/src/deps.rs",
    "crates/runtime/src/cont.rs",
];

/// The TLA+ specs and the invariants each must define; every spec needs a
/// sibling `.cfg` referencing the same invariants.
const TLA_SPECS: [(&str, &[&str]); 2] = [
    (
        "specs/tla/Injector.tla",
        &["W1NoLostTasks", "W2NoDoubleExecution", "W6BoundedMirror"],
    ),
    (
        "specs/tla/DepsRelease.tla",
        &["W1NoLostTasks", "W2NoDoubleExecution", "W6BoundedPending"],
    ),
];

/// How many lines above an atomic op a justification comment may sit.
const LOOKBACK: usize = 6;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next().unwrap_or_default();
    let root = workspace_root();
    match task.as_str() {
        "lint" => run_ordering_lint(&root),
        "tla-check" => run_tla_check(&root),
        other => {
            eprintln!("unknown task '{other}'; available: lint, tla-check");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest dir, unless
/// we are invoked from somewhere else inside the tree (then walk up to the
/// directory holding the workspace `Cargo.toml` with a `crates/` sibling).
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return root.to_path_buf();
            }
        }
    }
    let mut cur = std::env::current_dir().expect("cwd");
    loop {
        if cur.join("Cargo.toml").is_file() && cur.join("crates").is_dir() {
            return cur;
        }
        if !cur.pop() {
            panic!("could not locate the workspace root");
        }
    }
}

fn run_ordering_lint(root: &Path) -> ExitCode {
    let mut violations = Vec::new();
    for rel in PROTOCOL_FILES {
        let path = root.join(rel);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        violations.extend(
            lint_file(&text)
                .into_iter()
                .map(|v| format!("{rel}:{}: {}", v.line, v.what)),
        );
    }
    if violations.is_empty() {
        println!(
            "ordering lint: {} protocol files clean (every Relaxed justified, every CAS documented)",
            PROTOCOL_FILES.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("lint: {v}");
        }
        eprintln!(
            "\nordering lint: {} violation(s). Every `Ordering::Relaxed` in a protocol \
             file needs a `// relaxed-ok: <why>` comment and every `compare_exchange` a \
             `// transition: <state change>` comment, on the same line or within the {} \
             lines above.",
            violations.len(),
            LOOKBACK
        );
        ExitCode::FAILURE
    }
}

/// One lint finding: the 1-based line and what is missing.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    line: usize,
    what: &'static str,
}

/// Audits one protocol file's text. Only the non-test region is linted:
/// everything before the first `#[cfg(test)]` line (the repo convention
/// puts the test module last). Returns findings in line order.
fn lint_file(text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        // Strip the line's own comment so a mention of `Ordering::Relaxed`
        // inside prose does not trigger the lint; remember the comment to
        // honour same-line justifications.
        let (code, comment) = split_comment(line);
        if code.contains("Ordering::Relaxed") && !has_marker(&lines, idx, comment, "relaxed-ok:") {
            out.push(Violation {
                line: idx + 1,
                what: "Ordering::Relaxed without a `relaxed-ok:` justification",
            });
        }
        if code.contains("compare_exchange") && !has_marker(&lines, idx, comment, "transition:") {
            out.push(Violation {
                line: idx + 1,
                what: "compare_exchange without a `transition:` protocol comment",
            });
        }
    }
    out
}

/// Splits a source line at its `//` comment (ignoring `//` inside string
/// literals is unnecessary here: the protocol files carry no `//` inside
/// strings). Returns (code, comment-including-slashes).
fn split_comment(line: &str) -> (&str, &str) {
    match line.find("//") {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    }
}

/// Is `marker` present on this line's comment or in a comment within the
/// `LOOKBACK` preceding lines?
fn has_marker(lines: &[&str], idx: usize, own_comment: &str, marker: &str) -> bool {
    if own_comment.contains(marker) {
        return true;
    }
    lines[idx.saturating_sub(LOOKBACK)..idx]
        .iter()
        .any(|l| split_comment(l).1.contains(marker))
}

fn run_tla_check(root: &Path) -> ExitCode {
    let mut failures = Vec::new();
    for (rel, invariants) in TLA_SPECS {
        let path = root.join(rel);
        match std::fs::read_to_string(&path) {
            Ok(text) => failures.extend(
                check_tla_spec(rel, &text, invariants)
                    .into_iter()
                    .map(|m| format!("{rel}: {m}")),
            ),
            Err(e) => {
                failures.push(format!("{rel}: missing or unreadable ({e})"));
                continue;
            }
        }
        let cfg_rel = rel.replace(".tla", ".cfg");
        let cfg_path = root.join(&cfg_rel);
        match std::fs::read_to_string(&cfg_path) {
            Ok(cfg) => {
                for inv in invariants {
                    if !cfg.contains(inv) {
                        failures.push(format!("{cfg_rel}: does not reference invariant {inv}"));
                    }
                }
                if !cfg.contains("INVARIANT") {
                    failures.push(format!("{cfg_rel}: no INVARIANT clause"));
                }
            }
            Err(e) => failures.push(format!("{cfg_rel}: missing or unreadable ({e})")),
        }
    }
    // The real syntax checker, when this environment has one.
    if failures.is_empty() {
        if let Some(sany) = find_in_path("tla2sany") {
            for (rel, _) in TLA_SPECS {
                let out = std::process::Command::new(&sany)
                    .arg(root.join(rel))
                    .output();
                match out {
                    Ok(o) if o.status.success() => {}
                    Ok(o) => failures.push(format!(
                        "{rel}: tla2sany rejected the spec:\n{}",
                        String::from_utf8_lossy(&o.stdout)
                    )),
                    Err(e) => failures.push(format!("{rel}: tla2sany failed to run: {e}")),
                }
            }
        } else {
            println!("tla-check: tla2sany not on PATH, structural checks only");
        }
    }
    if failures.is_empty() {
        println!(
            "tla-check: {} specs present and well-formed",
            TLA_SPECS.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("tla-check: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Structural checks on one spec's text.
fn check_tla_spec(rel: &str, text: &str, invariants: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let module = Path::new(rel)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    let header_ok = text
        .lines()
        .next()
        .map(|l| l.contains("MODULE") && l.contains(module) && l.contains("----"))
        .unwrap_or(false);
    if !header_ok {
        out.push(format!(
            "first line is not a `---- MODULE {module} ----` header"
        ));
    }
    if !text.lines().rev().any(|l| l.trim().starts_with("====")) {
        out.push("module is not terminated with a `====` footer".to_string());
    }
    for inv in invariants {
        if !text.contains(&format!("{inv} ==")) {
            out.push(format!("invariant {inv} is not defined (`{inv} ==`)"));
        }
    }
    if !text.contains("Init ==") || !text.contains("Next ==") {
        out.push("spec must define Init and Next".to_string());
    }
    out
}

/// Looks `bin` up on PATH.
fn find_in_path(bin: &str) -> Option<PathBuf> {
    let path = std::env::var_os("PATH")?;
    std::env::split_paths(&path)
        .map(|d| d.join(bin))
        .find(|p| p.is_file())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn justified_relaxed_passes() {
        let src = "\
// relaxed-ok: counter is advisory
let x = a.load(Ordering::Relaxed);
";
        assert!(lint_file(src).is_empty());
    }

    #[test]
    fn same_line_justification_passes() {
        let src = "let x = a.load(Ordering::Relaxed); // relaxed-ok: advisory\n";
        assert!(lint_file(src).is_empty());
    }

    #[test]
    fn unjustified_relaxed_fails() {
        let src = "let x = a.load(Ordering::Relaxed);\n";
        let v = lint_file(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert!(v[0].what.contains("relaxed-ok"));
    }

    #[test]
    fn justification_outside_lookback_fails() {
        let mut src = String::from("// relaxed-ok: too far away\n");
        for _ in 0..LOOKBACK {
            src.push_str("let y = 1;\n");
        }
        src.push_str("let x = a.load(Ordering::Relaxed);\n");
        assert_eq!(lint_file(&src).len(), 1);
    }

    #[test]
    fn cas_needs_transition_comment() {
        let bad = "a.compare_exchange(x, y, Ordering::AcqRel, Ordering::Acquire);\n";
        let v = lint_file(bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("transition"));
        let good = "\
// transition: head: x -> y (publish)
a.compare_exchange(x, y, Ordering::AcqRel, Ordering::Acquire);
";
        assert!(lint_file(good).is_empty());
    }

    #[test]
    fn prose_mentions_do_not_trigger() {
        let src = "// Ordering::Relaxed would be wrong here, so we use Acquire.\n";
        assert!(lint_file(src).is_empty());
    }

    #[test]
    fn test_module_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f() { a.load(Ordering::Relaxed); }
}
";
        assert!(lint_file(src).is_empty());
    }

    #[test]
    fn the_shipped_protocol_files_are_clean() {
        // The real tree must pass the lint as shipped: run it in-process
        // over the same files the CI step audits.
        let root = workspace_root();
        for rel in PROTOCOL_FILES {
            let text = std::fs::read_to_string(root.join(rel))
                .unwrap_or_else(|e| panic!("cannot read {rel}: {e}"));
            let v = lint_file(&text);
            assert!(
                v.is_empty(),
                "{rel} has unjustified orderings: {:?}",
                v.iter().map(|x| (x.line, x.what)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn the_shipped_tla_specs_are_well_formed() {
        let root = workspace_root();
        for (rel, invariants) in TLA_SPECS {
            let text = std::fs::read_to_string(root.join(rel))
                .unwrap_or_else(|e| panic!("cannot read {rel}: {e}"));
            let problems = check_tla_spec(rel, &text, invariants);
            assert!(problems.is_empty(), "{rel}: {problems:?}");
            let cfg = std::fs::read_to_string(root.join(rel.replace(".tla", ".cfg")))
                .unwrap_or_else(|e| panic!("cannot read cfg for {rel}: {e}"));
            for inv in invariants {
                assert!(cfg.contains(inv), "{rel} cfg must reference {inv}");
            }
        }
    }
}
