//! Property tests for Alignment scoring: symmetry, self-alignment
//! optimality, score bounds, and serial/parallel agreement on arbitrary
//! sequence sets.

use bots_alignment::{
    align_all_parallel, align_all_serial, align_score, self_score, AlignGenerator, GAP_EXTEND,
    GAP_OPEN,
};
use bots_profile::NullProbe;
use bots_runtime::Runtime;
use proptest::prelude::*;

fn seq_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn score_is_symmetric(a in seq_strategy(), b in seq_strategy()) {
        prop_assert_eq!(
            align_score(&NullProbe, &a, &b),
            align_score(&NullProbe, &b, &a)
        );
    }

    #[test]
    fn self_alignment_is_gapless(a in seq_strategy()) {
        prop_assert_eq!(align_score(&NullProbe, &a, &a), self_score(&a));
    }

    #[test]
    fn score_upper_bound(a in seq_strategy(), b in seq_strategy()) {
        // No alignment can beat matching every residue of the shorter
        // sequence at the best possible weight (11 = W/W) with no gap cost
        // counted (a further over-estimate).
        let bound = 11 * a.len().min(b.len()) as i32;
        prop_assert!(align_score(&NullProbe, &a, &b) <= bound);
    }

    #[test]
    fn empty_alignment_costs_one_gap_run(a in seq_strategy()) {
        prop_assume!(!a.is_empty());
        let want = -(GAP_OPEN + GAP_EXTEND * a.len() as i32);
        prop_assert_eq!(align_score(&NullProbe, &a, &[]), want);
    }

    #[test]
    fn parallel_equals_serial(
        seqs in proptest::collection::vec(proptest::collection::vec(0u8..20, 1..60), 2..8),
        threads in 1usize..5,
        for_gen in any::<bool>(),
    ) {
        let rt = Runtime::with_threads(threads);
        let gen = if for_gen { AlignGenerator::For } else { AlignGenerator::Single };
        let got = align_all_parallel(&rt, &seqs, gen, threads % 2 == 0);
        let want = align_all_serial(&NullProbe, &seqs);
        prop_assert_eq!(got, want);
    }
}
