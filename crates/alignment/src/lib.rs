//! # bots-alignment — the BOTS Alignment kernel
//!
//! Aligns every protein sequence against every other and reports the best
//! score per pair: global alignment with BLOSUM62 weights and affine gap
//! penalties (Gotoh's linear-space scoring pass — the "full dynamic
//! programming algorithm" of §III-B). Sequence lengths vary, so the pair
//! tasks are imbalanced — the kernel's reason for existing.
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_alignment::{align_all_parallel, AlignGenerator};
//! use bots_inputs::protein::generate_proteins;
//!
//! let rt = Runtime::with_threads(2);
//! let seqs = generate_proteins(6, 50, 1);
//! let scores = align_all_parallel(&rt, &seqs, AlignGenerator::For, false);
//! assert_eq!(scores.len(), 15); // 6·5/2 pairs
//! ```
#![warn(missing_docs)]

mod bench;
mod pairs;
mod score;
mod trace;

pub use bench::{dims_for, AlignmentBench};
pub use pairs::{align_all_parallel, align_all_serial, pair_count, pair_index, AlignGenerator};
pub use score::{align_score, self_score, GAP_EXTEND, GAP_OPEN};
pub use trace::{align_trace, score_of_ops, Alignment, Op};
