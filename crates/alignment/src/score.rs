//! Pairwise protein alignment scoring: global alignment with affine gap
//! penalties (Gotoh's algorithm), BLOSUM62 weights — "a full dynamic
//! programming algorithm [that] uses a weight matrix to score mismatches,
//! and assigns penalties for opening and extending gaps" (§III-B).
//!
//! Linear-space: two rolling rows of `H` (best score) and one of `E`/`F`
//! (gap states), which is the scoring pass of Myers-Miller.

use bots_profile::Probe;

use bots_inputs::protein::BLOSUM62;

/// Penalty for opening a gap.
pub const GAP_OPEN: i32 = 11;
/// Penalty for extending a gap by one residue.
pub const GAP_EXTEND: i32 = 1;

const NEG: i32 = i32::MIN / 4;

/// Global affine-gap alignment score of two residue-index sequences.
///
/// The probe sees the per-cell arithmetic (≈10 ops) and the task-private
/// DP-array writes — the reason Table II reports almost no non-private
/// writes for Alignment.
pub fn align_score<P: Probe>(p: &P, a: &[u8], b: &[u8]) -> i32 {
    let n = b.len();
    // Rolling rows, indexed by position in b.
    let mut h_prev: Vec<i32> = Vec::with_capacity(n + 1);
    let mut e_row: Vec<i32> = vec![NEG; n + 1];
    // Row 0: leading gaps in a.
    h_prev.push(0);
    for j in 1..=n {
        h_prev.push(-(GAP_OPEN + GAP_EXTEND * j as i32));
    }
    let mut h_curr = vec![0i32; n + 1];

    let mut f; // gap-in-b state, scans along the row
    for (i, &ra) in a.iter().enumerate() {
        let i = i + 1;
        h_curr[0] = -(GAP_OPEN + GAP_EXTEND * i as i32);
        f = NEG;
        let weights = &BLOSUM62[ra as usize];
        for (j, &rb) in b.iter().enumerate() {
            let j = j + 1;
            // E: gap in a (horizontal), F: gap in b (vertical).
            e_row[j] = (e_row[j] - GAP_EXTEND).max(h_prev[j] - GAP_OPEN - GAP_EXTEND);
            f = (f - GAP_EXTEND).max(h_curr[j - 1] - GAP_OPEN - GAP_EXTEND);
            let diag = h_prev[j - 1] + weights[rb as usize];
            h_curr[j] = diag.max(e_row[j]).max(f);
        }
        p.ops(10 * n as u64);
        p.write_private(3 * n as u64); // h, e, f updates are task-private
        std::mem::swap(&mut h_prev, &mut h_curr);
    }
    h_prev[n]
}

/// Score of aligning a sequence against itself with no gaps (the diagonal
/// sum) — a lower bound that the optimal self-alignment must reach.
pub fn self_score(a: &[u8]) -> i32 {
    a.iter().map(|&r| BLOSUM62[r as usize][r as usize]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_inputs::protein::{generate_proteins, RESIDUES};
    use bots_profile::NullProbe;

    fn idx(letters: &str) -> Vec<u8> {
        letters
            .bytes()
            .map(|c| RESIDUES.iter().position(|&r| r == c).unwrap() as u8)
            .collect()
    }

    #[test]
    fn empty_vs_empty_is_zero() {
        assert_eq!(align_score(&NullProbe, &[], &[]), 0);
    }

    #[test]
    fn sequence_vs_empty_pays_gaps() {
        let a = idx("ARN");
        assert_eq!(
            align_score(&NullProbe, &a, &[]),
            -(GAP_OPEN + 3 * GAP_EXTEND)
        );
        assert_eq!(
            align_score(&NullProbe, &[], &a),
            -(GAP_OPEN + 3 * GAP_EXTEND)
        );
    }

    #[test]
    fn identical_sequences_score_diagonal_sum() {
        let a = idx("ARNDCQ");
        assert_eq!(align_score(&NullProbe, &a, &a), self_score(&a));
    }

    #[test]
    fn single_mismatch_uses_matrix() {
        let a = idx("A");
        let b = idx("R");
        // One substitution (A,R) = -1 beats two gaps (-(11+1)·2).
        assert_eq!(align_score(&NullProbe, &a, &b), -1);
    }

    #[test]
    fn symmetry() {
        let seqs = generate_proteins(6, 40, 99);
        for i in 0..seqs.len() {
            for j in i + 1..seqs.len() {
                assert_eq!(
                    align_score(&NullProbe, &seqs[i], &seqs[j]),
                    align_score(&NullProbe, &seqs[j], &seqs[i]),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn insertion_scores_one_gap() {
        // WW vs W W with an inserted A: best alignment matches the Ws and
        // gaps the A: 11 + 11 - (11+1) = 10 ... or substitutes. Compute both
        // candidates and take the max as the expectation.
        let a = idx("WW");
        let b = idx("WAW");
        let w_match = BLOSUM62[idx("W")[0] as usize][idx("W")[0] as usize];
        let wa = BLOSUM62[idx("W")[0] as usize][idx("A")[0] as usize];
        let gap1 = -(GAP_OPEN + GAP_EXTEND);
        let candidate_gap = 2 * w_match + gap1;
        let candidate_sub = w_match + wa + gap1; // mismatch + trailing gap
        let expect = candidate_gap.max(candidate_sub);
        assert_eq!(align_score(&NullProbe, &a, &b), expect);
    }

    #[test]
    fn self_alignment_is_at_least_any_pair() {
        let seqs = generate_proteins(4, 60, 5);
        for s in &seqs {
            let self_sc = align_score(&NullProbe, s, s);
            for t in &seqs {
                let cross = align_score(&NullProbe, s, t);
                assert!(self_sc >= cross || s == t);
            }
        }
    }
}
