//! All-pairs alignment: the serial reference and the parallel versions.
//!
//! "We parallelized the outer loop with an omp for worksharing with tasks
//! created inside this parallel loop. This allows the implementation to
//! break the iterations when the number of threads is large compared to
//! the number of iterations and when there is imbalance" (§III-B). The
//! `for` version reproduces that structure; a `single`-generator variant
//! exists for comparison. Each pair's score lands in its own output slot.

use std::sync::atomic::{AtomicI32, Ordering};

use bots_profile::{NullProbe, Probe};
use bots_runtime::{LoopMode, Runtime, Scope, TaskAttrs};

use crate::score::align_score;

/// Index of pair `(i, j)` (`i < j`) in the packed upper-triangle output.
#[inline]
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    // Row i starts after sum_{r<i} (n-1-r) entries.
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Number of pairs for `n` sequences.
pub fn pair_count(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Serial all-pairs scoring (instrumented; emits one potential-task event
/// per pair, as the parallel versions spawn one task per pair).
pub fn align_all_serial<P: Probe>(p: &P, seqs: &[Vec<u8>]) -> Vec<i32> {
    let n = seqs.len();
    let mut out = vec![0i32; pair_count(n)];
    for i in 0..n {
        for j in i + 1..n {
            p.task(40); // two sequence handles + indices
            out[pair_index(n, i, j)] = align_score(p, &seqs[i], &seqs[j]);
            p.write_shared(1); // the score lands in the shared result array
        }
    }
    out
}

/// Generator scheme for the parallel version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignGenerator {
    /// `omp for` over the outer loop; tasks per pair inside (the paper's
    /// structure).
    For,
    /// All pair-tasks created from a `single` region.
    Single,
}

/// Parallel all-pairs scoring.
pub fn align_all_parallel(
    rt: &Runtime,
    seqs: &[Vec<u8>],
    gen: AlignGenerator,
    untied: bool,
) -> Vec<i32> {
    let attrs = TaskAttrs::default().with_tied(!untied);
    let out: Vec<AtomicI32> = (0..pair_count(seqs.len()))
        .map(|_| AtomicI32::new(0))
        .collect();
    let out_ref = &out[..];
    rt.region(move |s| score_pairs(s, seqs, out_ref, gen, attrs))
        .join();
    out.into_iter().map(|a| a.into_inner()).collect()
}

/// The region body: spawns one scoring task per pair under the chosen
/// generator scheme.
fn score_pairs<'e>(
    s: &Scope<'e>,
    seqs: &'e [Vec<u8>],
    out: &'e [AtomicI32],
    gen: AlignGenerator,
    attrs: TaskAttrs,
) {
    let n = seqs.len();
    match gen {
        AlignGenerator::For => {
            // The paper's structure verbatim: a worksharing loop over the
            // outer index, tasks created inside each claimed chunk.
            s.for_each(0..n, move |i, s| {
                for j in i + 1..n {
                    s.spawn_with(attrs, move |_| {
                        let score = align_score(&NullProbe, &seqs[i], &seqs[j]);
                        out[pair_index(n, i, j)].store(score, Ordering::Relaxed);
                    });
                }
            })
            .mode(LoopMode::Worksharing)
            .run();
        }
        AlignGenerator::Single => {
            for i in 0..n {
                for j in i + 1..n {
                    s.spawn_with(attrs, move |_| {
                        let score = align_score(&NullProbe, &seqs[i], &seqs[j]);
                        out[pair_index(n, i, j)].store(score, Ordering::Relaxed);
                    });
                }
            }
            s.taskwait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_inputs::protein::generate_proteins;

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 9;
        let mut seen = vec![false; pair_count(n)];
        for i in 0..n {
            for j in i + 1..n {
                let k = pair_index(n, i, j);
                assert!(!seen[k], "collision at ({i},{j})");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parallel_matches_serial_both_generators() {
        let seqs = generate_proteins(12, 60, 31);
        let want = align_all_serial(&NullProbe, &seqs);
        let rt = Runtime::with_threads(4);
        for gen in [AlignGenerator::For, AlignGenerator::Single] {
            for untied in [false, true] {
                let got = align_all_parallel(&rt, &seqs, gen, untied);
                assert_eq!(got, want, "gen={gen:?} untied={untied}");
            }
        }
    }

    #[test]
    fn single_thread_matches() {
        let seqs = generate_proteins(8, 50, 7);
        let want = align_all_serial(&NullProbe, &seqs);
        let rt = Runtime::with_threads(1);
        let got = align_all_parallel(&rt, &seqs, AlignGenerator::For, false);
        assert_eq!(got, want);
    }

    #[test]
    fn two_sequences_edge_case() {
        let seqs = generate_proteins(2, 30, 3);
        let rt = Runtime::with_threads(2);
        let got = align_all_parallel(&rt, &seqs, AlignGenerator::Single, false);
        assert_eq!(got.len(), 1);
        assert_eq!(got, align_all_serial(&NullProbe, &seqs));
    }
}
