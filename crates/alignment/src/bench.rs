//! `Benchmark` wiring for Alignment.

use bots_inputs::{protein::generate_proteins, InputClass};
use bots_profile::{CountingProbe, NullProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{
    fnv1a_u64, BenchMeta, Benchmark, Generator, RunOutput, Tiedness, Verification, VersionSpec,
};

use crate::pairs::{align_all_parallel, align_all_serial, AlignGenerator};

/// `(sequence count, mean length)` per class.
pub fn dims_for(class: InputClass) -> (usize, usize) {
    class.pick([(10, 100), (40, 200), (80, 300), (120, 400)])
}

const SEED: u64 = 0xA11A_5EED;

fn digest(scores: &[i32]) -> u64 {
    let mut acc = 0u64;
    for (k, &s) in scores.iter().enumerate() {
        acc ^= fnv1a_u64(s as u64).rotate_left((k % 61) as u32);
    }
    acc
}

/// Alignment as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct AlignmentBench;

impl Benchmark for AlignmentBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "Alignment",
            origin: "AKM",
            domain: "Dynamic programming",
            structure: "Iterative",
            task_directives: 1,
            tasks_inside: "for",
            nested_tasks: false,
            app_cutoff: "none",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        let (n, len) = dims_for(class);
        format!("{n} proteins (~{len} aa)")
    }

    fn versions(&self) -> Vec<VersionSpec> {
        vec![
            VersionSpec::default().generator(Generator::For),
            VersionSpec::default()
                .generator(Generator::For)
                .tied(Tiedness::Untied),
            VersionSpec::default(),
            VersionSpec::default().tied(Tiedness::Untied),
        ]
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let (n, len) = dims_for(class);
        let seqs = generate_proteins(n, len, SEED);
        let scores = align_all_serial(&NullProbe, &seqs);
        RunOutput::new(digest(&scores), format!("{} pair scores", scores.len()))
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let (n, len) = dims_for(class);
        let seqs = generate_proteins(n, len, SEED);
        let gen = match version.generator {
            Generator::For => AlignGenerator::For,
            // Alignment lists no `deps` version (the all-pairs loop has no
            // inter-task data flow to express); treat it as `single`.
            Generator::Single | Generator::Deps => AlignGenerator::Single,
        };
        let scores = align_all_parallel(rt, &seqs, gen, version.tiedness == Tiedness::Untied);
        RunOutput::new(digest(&scores), format!("{} pair scores", scores.len()))
    }

    fn verify(&self, _class: InputClass, _output: &RunOutput) -> Verification {
        // Integer DP scores are exactly reproducible: compare to serial.
        Verification::AgainstSerial
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let (n, len) = dims_for(class);
        let seqs = generate_proteins(n, len, SEED);
        let p = CountingProbe::new();
        align_all_serial(&p, &seqs);
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3: "alignment (untied)" on the for-generator structure.
        VersionSpec::default()
            .generator(Generator::For)
            .tied(Tiedness::Untied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_suite::runner;

    #[test]
    fn all_versions_verify() {
        let b = AlignmentBench;
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            runner::verify(&b, InputClass::Test, &out).unwrap();
        }
    }

    #[test]
    fn characterization_is_private_heavy() {
        let c = AlignmentBench.characterize(InputClass::Test);
        // Paper: 0.03% non-private writes — DP arrays are task-private.
        let pct = 100.0 * c.writes_shared as f64 / c.writes_total() as f64;
        assert!(pct < 1.0, "non-private write % = {pct}");
        // Few, coarse tasks (45 pairs on the test class).
        assert_eq!(c.tasks, 45);
        assert_eq!(c.taskwaits, 0);
    }
}
