//! Full alignment reconstruction (not just the score): Gotoh's affine-gap
//! DP with traceback.
//!
//! The suite's timed kernel only needs the *scores* (computed in linear
//! space, as in the scoring pass of Myers-Miller — see [`crate::score`]);
//! this module adds the alignment itself for library users, with an O(nm)
//! traceback matrix. Each returned path is validated against the
//! independent linear-space scorer in this crate's tests.

use bots_inputs::protein::BLOSUM62;

use crate::score::{GAP_EXTEND, GAP_OPEN};

const NEG: i32 = i32::MIN / 4;

/// One alignment operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Align `a[i]` with `b[j]` (match or substitution).
    Sub,
    /// Gap in `a`: consume one residue of `b`.
    Ins,
    /// Gap in `b`: consume one residue of `a`.
    Del,
}

/// An alignment: its score and the operation sequence (consuming `a` and
/// `b` front to back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Global alignment score.
    pub score: i32,
    /// Operations, in order.
    pub ops: Vec<Op>,
}

impl Alignment {
    /// Number of gap characters in the alignment.
    pub fn gaps(&self) -> usize {
        self.ops.iter().filter(|o| !matches!(o, Op::Sub)).count()
    }

    /// Renders the alignment as two gapped residue-letter lines.
    pub fn render(&self, a: &[u8], b: &[u8]) -> (String, String) {
        use bots_inputs::protein::RESIDUES;
        let (mut i, mut j) = (0usize, 0usize);
        let (mut la, mut lb) = (String::new(), String::new());
        for op in &self.ops {
            match op {
                Op::Sub => {
                    la.push(RESIDUES[a[i] as usize] as char);
                    lb.push(RESIDUES[b[j] as usize] as char);
                    i += 1;
                    j += 1;
                }
                Op::Ins => {
                    la.push('-');
                    lb.push(RESIDUES[b[j] as usize] as char);
                    j += 1;
                }
                Op::Del => {
                    la.push(RESIDUES[a[i] as usize] as char);
                    lb.push('-');
                    i += 1;
                }
            }
        }
        (la, lb)
    }
}

/// Scores an operation sequence directly (the re-scoring oracle used to
/// validate tracebacks; affine gaps charged per run).
pub fn score_of_ops(a: &[u8], b: &[u8], ops: &[Op]) -> i32 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut score = 0i32;
    let mut prev: Option<Op> = None;
    for &op in ops {
        match op {
            Op::Sub => {
                score += BLOSUM62[a[i] as usize][b[j] as usize];
                i += 1;
                j += 1;
            }
            Op::Ins => {
                score -= GAP_EXTEND + if prev == Some(Op::Ins) { 0 } else { GAP_OPEN };
                j += 1;
            }
            Op::Del => {
                score -= GAP_EXTEND + if prev == Some(Op::Del) { 0 } else { GAP_OPEN };
                i += 1;
            }
        }
        prev = Some(op);
    }
    assert_eq!(
        (i, j),
        (a.len(), b.len()),
        "ops must consume both sequences"
    );
    score
}

/// Computes the optimal global alignment of `a` and `b` with full
/// traceback (O(nm) space).
pub fn align_trace(a: &[u8], b: &[u8]) -> Alignment {
    let (m, n) = (a.len(), b.len());
    let width = n + 1;
    let idx = |i: usize, j: usize| i * width + j;

    // Three DP layers: H (best), E (gap in a / insertion), F (gap in b /
    // deletion), plus compact traceback tags.
    let mut h = vec![NEG; (m + 1) * width];
    let mut e = vec![NEG; (m + 1) * width];
    let mut f = vec![NEG; (m + 1) * width];

    h[idx(0, 0)] = 0;
    for j in 1..=n {
        e[idx(0, j)] = -(GAP_OPEN + GAP_EXTEND * j as i32);
        h[idx(0, j)] = e[idx(0, j)];
    }
    for i in 1..=m {
        f[idx(i, 0)] = -(GAP_OPEN + GAP_EXTEND * i as i32);
        h[idx(i, 0)] = f[idx(i, 0)];
    }

    for i in 1..=m {
        let wa = &BLOSUM62[a[i - 1] as usize];
        for j in 1..=n {
            let open_e = h[idx(i, j - 1)] - GAP_OPEN - GAP_EXTEND;
            let ext_e = e[idx(i, j - 1)] - GAP_EXTEND;
            e[idx(i, j)] = open_e.max(ext_e);

            let open_f = h[idx(i - 1, j)] - GAP_OPEN - GAP_EXTEND;
            let ext_f = f[idx(i - 1, j)] - GAP_EXTEND;
            f[idx(i, j)] = open_f.max(ext_f);

            let diag = h[idx(i - 1, j - 1)] + wa[b[j - 1] as usize];
            h[idx(i, j)] = diag.max(e[idx(i, j)]).max(f[idx(i, j)]);
        }
    }

    // Traceback through the three layers.
    #[derive(Clone, Copy, PartialEq)]
    enum Layer {
        H,
        E,
        F,
    }
    let mut ops = Vec::with_capacity(m + n);
    let (mut i, mut j) = (m, n);
    let mut layer = Layer::H;
    while i > 0 || j > 0 {
        match layer {
            Layer::H => {
                let cur = h[idx(i, j)];
                if i > 0
                    && j > 0
                    && cur == h[idx(i - 1, j - 1)] + BLOSUM62[a[i - 1] as usize][b[j - 1] as usize]
                {
                    ops.push(Op::Sub);
                    i -= 1;
                    j -= 1;
                } else if j > 0 && cur == e[idx(i, j)] {
                    layer = Layer::E;
                } else {
                    debug_assert!(i > 0 && cur == f[idx(i, j)]);
                    layer = Layer::F;
                }
            }
            Layer::E => {
                // Did this insertion run open here or extend leftwards? On
                // ties, prefer "opened" (both reconstructions score the
                // same; shorter runs make tracebacks canonical).
                let cur = e[idx(i, j)];
                ops.push(Op::Ins);
                let opened = cur == h[idx(i, j - 1)] - GAP_OPEN - GAP_EXTEND;
                j -= 1;
                if opened {
                    layer = Layer::H;
                }
            }
            Layer::F => {
                let cur = f[idx(i, j)];
                ops.push(Op::Del);
                let opened = cur == h[idx(i - 1, j)] - GAP_OPEN - GAP_EXTEND;
                i -= 1;
                if opened {
                    layer = Layer::H;
                }
            }
        }
    }
    ops.reverse();
    Alignment {
        score: h[idx(m, n)],
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::align_score;
    use bots_inputs::protein::generate_proteins;
    use bots_profile::NullProbe;

    #[test]
    fn identical_sequences_align_gapless() {
        let a = generate_proteins(1, 50, 3).remove(0);
        let al = align_trace(&a, &a);
        assert!(al.ops.iter().all(|o| matches!(o, Op::Sub)));
        assert_eq!(al.gaps(), 0);
        assert_eq!(al.score, align_score(&NullProbe, &a, &a));
    }

    #[test]
    fn traceback_score_matches_linear_space_scorer() {
        let seqs = generate_proteins(8, 60, 17);
        for i in 0..seqs.len() {
            for j in i + 1..seqs.len() {
                let al = align_trace(&seqs[i], &seqs[j]);
                let want = align_score(&NullProbe, &seqs[i], &seqs[j]);
                assert_eq!(al.score, want, "H-matrix score ({i},{j})");
                // And the emitted operations re-score to the same value —
                // cross-checks the traceback itself.
                assert_eq!(
                    score_of_ops(&seqs[i], &seqs[j], &al.ops),
                    want,
                    "ops ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn empty_cases() {
        let a = generate_proteins(1, 20, 5).remove(0);
        let al = align_trace(&a, &[]);
        assert!(al.ops.iter().all(|o| matches!(o, Op::Del)));
        assert_eq!(al.ops.len(), a.len());
        let al = align_trace(&[], &a);
        assert!(al.ops.iter().all(|o| matches!(o, Op::Ins)));
        let al = align_trace(&[], &[]);
        assert!(al.ops.is_empty());
        assert_eq!(al.score, 0);
    }

    #[test]
    fn render_shapes_match() {
        let seqs = generate_proteins(2, 30, 9);
        let al = align_trace(&seqs[0], &seqs[1]);
        let (la, lb) = al.render(&seqs[0], &seqs[1]);
        assert_eq!(la.chars().count(), lb.chars().count());
        assert_eq!(la.chars().filter(|&c| c != '-').count(), seqs[0].len());
        assert_eq!(lb.chars().filter(|&c| c != '-').count(), seqs[1].len());
    }
}
