//! Deterministic PRNGs for input generation.
//!
//! Benchmark inputs must be bit-reproducible across runs and platforms, so
//! we use our own fixed-algorithm generators rather than an external crate
//! whose stream might change between versions: SplitMix64 for seeding and
//! simple derivation, and xoshiro256** for bulk streams.
//!
//! The per-entity seeding pattern (`derive`) is also how the Health kernel
//! implements the paper's determinism fix: "instead of a single seed for
//! random numbers, one seed for each village".

/// SplitMix64 (Steele, Lea & Flood): excellent seeder, passes BigCrush.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the state through SplitMix64, per the xoshiro authors'
    /// recommendation.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent child generator, e.g. one per village / per
    /// sequence / per matrix block.
    pub fn derive(&self, stream: u64) -> Rng {
        let mut sm = SplitMix64::new(self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next value as `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` (widening-multiply method; negligible
    /// bias for benchmark-input purposes).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 3);
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let root = Rng::new(7);
        let mut c1 = root.derive(42);
        let mut c1b = root.derive(42);
        let mut c2 = root.derive(43);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::new(99);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn unit_f64_bounds_and_mean() {
        let mut rng = Rng::new(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn chance_estimates_probability() {
        let mut rng = Rng::new(3);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (cross-checked against the reference C).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
