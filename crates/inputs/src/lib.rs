//! # bots-inputs — deterministic input generation for the BOTS kernels
//!
//! The paper ships input files and defines four input classes per
//! application (§III-A "Input sets"). This crate replaces the files with
//! deterministic generators — same seed, same bytes, on any platform — and
//! provides the class enumeration:
//!
//! * [`InputClass`]: `test` / `small` / `medium` / `large`;
//! * [`Rng`] / [`SplitMix64`]: fixed-algorithm PRNGs, with per-entity
//!   derivation ([`Rng::derive`]) used by the Health kernel's
//!   one-seed-per-village determinism fix;
//! * [`protein`]: synthetic protein sequences + the BLOSUM62 matrix
//!   (Alignment);
//! * [`arrays`]: random `u32` arrays (Sort), complex signals (FFT), dense
//!   matrices (Strassen);
//! * [`blockmatrix`]: the BOTS `genmat` sparsity pattern and block filler
//!   (SparseLU).

#![warn(missing_docs)]

pub mod arrays;
pub mod blockmatrix;
mod class;
pub mod protein;
mod rng;

pub use class::InputClass;
pub use rng::{Rng, SplitMix64};
