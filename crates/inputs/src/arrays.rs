//! Bulk numeric inputs: random integer arrays (Sort), complex signals (FFT)
//! and dense matrices (Strassen).

use crate::rng::Rng;

/// A "random permutation of n 32-bit numbers" in the loose sense the Cilk
/// sort benchmark uses: uniform random `u32`s (duplicates possible).
pub fn random_u32s(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.next_u32()).collect()
}

/// An actual permutation of `0..n`, shuffled.
pub fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    Rng::new(seed).shuffle(&mut v);
    v
}

/// `n` complex samples as interleaved `(re, im)` pairs, uniform in
/// `[-1, 1)²`.
pub fn complex_signal(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| (rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
        .collect()
}

/// A dense row-major `n × n` matrix with entries uniform in `[-1, 1)`.
pub fn dense_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..n * n).map(|_| rng.range_f64(-1.0, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32s_deterministic_and_varied() {
        let a = random_u32s(1000, 5);
        assert_eq!(a, random_u32s(1000, 5));
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert!(distinct.len() > 990, "suspiciously many duplicates");
    }

    #[test]
    fn permutation_is_exact() {
        let p = permutation(500, 9);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn complex_signal_bounds() {
        for (re, im) in complex_signal(1000, 2) {
            assert!((-1.0..1.0).contains(&re));
            assert!((-1.0..1.0).contains(&im));
        }
    }

    #[test]
    fn dense_matrix_shape_and_range() {
        let m = dense_matrix(16, 3);
        assert_eq!(m.len(), 256);
        assert!(m.iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
