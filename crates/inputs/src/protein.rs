//! Protein-sequence inputs for the Alignment kernel.
//!
//! The paper aligns "all protein sequences from an input file against every
//! other sequence" with a weight matrix and affine gap penalties. We have no
//! proprietary FASTA inputs, so sequences are generated deterministically:
//! residue identities are uniform over the 20 standard amino acids and
//! lengths vary ±25 % around the class mean, which preserves the property
//! the kernel stresses (quadratic-cost pairs of *unequal* sizes ⇒ load
//! imbalance across tasks).
//!
//! Scoring uses the standard BLOSUM62 substitution matrix, embedded below in
//! the canonical ARNDCQEGHILKMFPSTWYV residue order.

use crate::rng::Rng;

/// Number of standard amino acids.
pub const ALPHABET: usize = 20;

/// Residue letters in BLOSUM62 canonical order.
pub const RESIDUES: [u8; ALPHABET] = *b"ARNDCQEGHILKMFPSTWYV";

/// The BLOSUM62 substitution matrix (symmetric, row/col in [`RESIDUES`]
/// order).
#[rustfmt::skip]
pub const BLOSUM62: [[i32; ALPHABET]; ALPHABET] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0], // A
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3], // R
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3], // N
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3], // D
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1], // C
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2], // Q
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2], // E
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3], // G
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3], // H
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3], // I
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1], // L
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2], // K
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1], // M
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1], // F
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2], // P
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2], // S
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0], // T
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3], // W
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1], // Y
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4], // V
];

/// A protein as residue *indices* into [`RESIDUES`] (ready for matrix
/// lookups without a translation step).
pub type Sequence = Vec<u8>;

/// Generates `count` sequences with lengths uniform in
/// `[0.75 × mean_len, 1.25 × mean_len]`.
pub fn generate_proteins(count: usize, mean_len: usize, seed: u64) -> Vec<Sequence> {
    let root = Rng::new(seed);
    (0..count)
        .map(|i| {
            let mut rng = root.derive(i as u64);
            let lo = (mean_len * 3) / 4;
            let hi = (mean_len * 5) / 4;
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| rng.below(ALPHABET as u64) as u8).collect()
        })
        .collect()
}

/// Renders a sequence as a residue-letter string (for debugging / examples).
pub fn to_letters(seq: &[u8]) -> String {
    seq.iter().map(|&r| RESIDUES[r as usize] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) indices ARE the subject
    fn blosum62_is_symmetric() {
        for i in 0..ALPHABET {
            for j in 0..ALPHABET {
                assert_eq!(BLOSUM62[i][j], BLOSUM62[j][i], "asym at ({i},{j})");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) indices ARE the subject
    fn blosum62_diagonal_dominates_row() {
        for i in 0..ALPHABET {
            for j in 0..ALPHABET {
                assert!(
                    BLOSUM62[i][i] >= BLOSUM62[i][j],
                    "self-match must score best: row {i}, col {j}"
                );
            }
        }
    }

    #[test]
    fn blosum62_spot_values() {
        let idx = |c: u8| RESIDUES.iter().position(|&r| r == c).unwrap();
        assert_eq!(BLOSUM62[idx(b'W')][idx(b'W')], 11);
        assert_eq!(BLOSUM62[idx(b'A')][idx(b'A')], 4);
        assert_eq!(BLOSUM62[idx(b'I')][idx(b'V')], 3);
        assert_eq!(BLOSUM62[idx(b'D')][idx(b'W')], -4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_proteins(10, 100, 42);
        let b = generate_proteins(10, 100, 42);
        assert_eq!(a, b);
        let c = generate_proteins(10, 100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn lengths_in_declared_band() {
        let seqs = generate_proteins(50, 200, 7);
        assert_eq!(seqs.len(), 50);
        for s in &seqs {
            assert!((150..=250).contains(&s.len()), "len={}", s.len());
        }
        // Lengths must actually vary (imbalance is the point).
        let min = seqs.iter().map(|s| s.len()).min().unwrap();
        let max = seqs.iter().map(|s| s.len()).max().unwrap();
        assert!(max > min);
    }

    #[test]
    fn residues_are_valid_indices() {
        for s in generate_proteins(20, 50, 3) {
            assert!(s.iter().all(|&r| (r as usize) < ALPHABET));
        }
    }

    #[test]
    fn letters_render() {
        let s = vec![0u8, 1, 19];
        assert_eq!(to_letters(&s), "ARV");
    }
}
