//! Sparse block-matrix structure for the SparseLU kernel.
//!
//! The BOTS `genmat` routine decides which blocks of the NB×NB block matrix
//! are allocated with a fixed arithmetic pattern (reproduced verbatim below:
//! band of three diagonals always present, plus a sparse scatter controlled
//! by index parities and mod-3 tests). We keep that exact pattern so the
//! imbalance profile — the whole reason SparseLU is in the suite — matches
//! the original.

use crate::rng::Rng;

/// Is block `(ii, jj)` present in the BOTS sparsity pattern?
pub fn bots_block_present(ii: usize, jj: usize) -> bool {
    let mut null_entry = false;
    if ii < jj && !ii.is_multiple_of(3) {
        null_entry = true;
    }
    if ii > jj && !jj.is_multiple_of(3) {
        null_entry = true;
    }
    if ii % 2 == 1 {
        null_entry = true;
    }
    if jj % 2 == 1 {
        null_entry = true;
    }
    if ii == jj {
        null_entry = false;
    }
    if ii + 1 == jj || jj + 1 == ii {
        null_entry = false;
    }
    !null_entry
}

/// The full NB×NB presence map, row-major.
pub fn structure(nb: usize) -> Vec<bool> {
    let mut m = Vec::with_capacity(nb * nb);
    for ii in 0..nb {
        for jj in 0..nb {
            m.push(bots_block_present(ii, jj));
        }
    }
    m
}

/// Fills one BS×BS block with deterministic values derived from its
/// coordinates. Diagonal blocks are made strongly diagonally dominant so the
/// unpivoted factorisation (BOTS does not pivot either) stays well
/// conditioned.
pub fn fill_block(ii: usize, jj: usize, bs: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed ^ ((ii as u64) << 32) ^ jj as u64);
    let mut block: Vec<f64> = (0..bs * bs).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    if ii == jj {
        for k in 0..bs {
            // Dominance margin scaled to the row length of the full matrix.
            block[k * bs + k] += 4.0 * bs as f64;
        }
    }
    block
}

/// Density of the BOTS pattern (fraction of present blocks).
pub fn density(nb: usize) -> f64 {
    let s = structure(nb);
    s.iter().filter(|&&p| p).count() as f64 / s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonals_always_present() {
        for n in [5usize, 10, 50] {
            for i in 0..n {
                assert!(bots_block_present(i, i), "diag ({i},{i})");
                if i + 1 < n {
                    assert!(bots_block_present(i, i + 1), "super ({i},{})", i + 1);
                    assert!(bots_block_present(i + 1, i), "sub ({},{i})", i + 1);
                }
            }
        }
    }

    #[test]
    fn pattern_is_sparse_but_not_empty() {
        let d = density(50);
        assert!(d > 0.05 && d < 0.6, "density {d} out of expected band");
    }

    #[test]
    fn pattern_matches_bots_reference_window() {
        // Hand-evaluated 6×6 corner of the BOTS genmat pattern.
        let expect = [
            [true, true, true, false, true, false],   // ii=0
            [true, true, true, false, false, false],  // ii=1
            [true, true, true, true, false, false],   // ii=2
            [false, false, true, true, true, false],  // ii=3
            [true, false, false, true, true, true],   // ii=4
            [false, false, false, false, true, true], // ii=5
        ];
        for (ii, row) in expect.iter().enumerate() {
            for (jj, &want) in row.iter().enumerate() {
                assert_eq!(bots_block_present(ii, jj), want, "({ii},{jj})");
            }
        }
    }

    #[test]
    fn fill_is_deterministic_and_dominant() {
        let a = fill_block(3, 3, 8, 42);
        let b = fill_block(3, 3, 8, 42);
        assert_eq!(a, b);
        for k in 0..8 {
            let diag = a[k * 8 + k].abs();
            let off: f64 = (0..8).filter(|&j| j != k).map(|j| a[k * 8 + j].abs()).sum();
            assert!(diag > off, "row {k} not dominant: {diag} <= {off}");
        }
        let c = fill_block(3, 4, 8, 42);
        assert_ne!(a, c, "blocks at different coordinates must differ");
    }

    #[test]
    fn structure_is_row_major() {
        let nb = 7;
        let s = structure(nb);
        for ii in 0..nb {
            for jj in 0..nb {
                assert_eq!(s[ii * nb + jj], bots_block_present(ii, jj));
            }
        }
    }
}
