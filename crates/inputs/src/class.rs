//! Input classes: the paper's four data-set sizes, re-scaled.
//!
//! The paper defines them by budget on an SGI Altix 4700: `test` is a smoke
//! test; `small` stays under 1 GB / 1 min serial; `medium` under 4 GB /
//! 10 min; `large` up to 10 GB / 30 min. We keep the four-class structure
//! and the intent (smoke / seconds / default-evaluation / stress) but scale
//! absolute sizes to a commodity multicore box — each kernel documents its
//! per-class parameters.

/// One of the four BOTS input classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum InputClass {
    /// Very small; only to quickly check that benchmarks work.
    Test,
    /// Around a second of serial time.
    Small,
    /// The evaluation default (the paper's Figures 3-5 and Table II use
    /// medium).
    #[default]
    Medium,
    /// The stress class: largest memory footprint and longest runtime.
    Large,
}

impl InputClass {
    /// All classes, smallest first.
    pub const ALL: [InputClass; 4] = [
        InputClass::Test,
        InputClass::Small,
        InputClass::Medium,
        InputClass::Large,
    ];

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            InputClass::Test => "test",
            InputClass::Small => "small",
            InputClass::Medium => "medium",
            InputClass::Large => "large",
        }
    }

    /// Picks a per-class value (a tiny helper that keeps kernel parameter
    /// tables declarative).
    pub fn pick<T: Copy>(self, values: [T; 4]) -> T {
        values[self as usize]
    }
}

impl std::fmt::Display for InputClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for InputClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "test" | "t" => Ok(InputClass::Test),
            "small" | "s" => Ok(InputClass::Small),
            "medium" | "m" => Ok(InputClass::Medium),
            "large" | "l" => Ok(InputClass::Large),
            other => Err(format!(
                "unknown input class '{other}' (test|small|medium|large)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for c in InputClass::ALL {
            let parsed: InputClass = c.name().parse().unwrap();
            assert_eq!(parsed, c);
            assert_eq!(format!("{c}"), c.name());
        }
    }

    #[test]
    fn short_names_parse() {
        assert_eq!("m".parse::<InputClass>().unwrap(), InputClass::Medium);
        assert_eq!("T".parse::<InputClass>().unwrap(), InputClass::Test);
    }

    #[test]
    fn unknown_rejected() {
        assert!("huge".parse::<InputClass>().is_err());
    }

    #[test]
    fn pick_maps_by_ordinal() {
        assert_eq!(InputClass::Test.pick([1, 2, 3, 4]), 1);
        assert_eq!(InputClass::Large.pick([1, 2, 3, 4]), 4);
    }

    #[test]
    fn ordering_smallest_first() {
        assert!(InputClass::Test < InputClass::Small);
        assert!(InputClass::Small < InputClass::Medium);
        assert!(InputClass::Medium < InputClass::Large);
    }

    #[test]
    fn default_is_medium() {
        assert_eq!(InputClass::default(), InputClass::Medium);
    }
}
