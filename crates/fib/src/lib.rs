//! # bots-fib — the BOTS Fibonacci kernel
//!
//! Computes the n-th Fibonacci number with a binary-recursive
//! parallelisation: "a simple test case of a deep tree composed of very
//! fine grain tasks" (paper §III-B). The interesting thing is never the
//! number — it is how an implementation survives tens of millions of
//! near-empty tasks, and how much the depth-based cut-offs (if-clause vs
//! manual) recover.
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_fib::{fib_parallel, FibMode, fib_fast};
//!
//! let rt = Runtime::with_threads(4);
//! let v = fib_parallel(&rt, 25, FibMode::Manual, false, 8);
//! assert_eq!(v, fib_fast(25));
//! ```

#![warn(missing_docs)]

mod bench;
mod parallel;
mod serial;

pub use bench::{cutoff_for, n_for, FibBench};
pub use parallel::{fib_parallel, FibMode};
pub use serial::{fib, fib_fast, fib_profiled, ENV_BYTES};
