//! The `Benchmark` implementation wiring Fib into the suite.

use bots_inputs::InputClass;
use bots_profile::{CountingProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{
    fnv1a_u64, BenchMeta, Benchmark, CutoffMode, RunOutput, Tiedness, Verification, VersionSpec,
};

use crate::parallel::{fib_parallel, FibMode};
use crate::serial::{fib, fib_fast, fib_profiled};

/// Problem size per input class.
pub fn n_for(class: InputClass) -> u64 {
    class.pick([20, 30, 40, 45])
}

/// Default manual/if-clause cut-off depth per class (deep enough to expose
/// thousands of coarse tasks, shallow enough to bound overhead).
pub fn cutoff_for(class: InputClass) -> u32 {
    class.pick([6, 10, 12, 14])
}

/// Fib as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct FibBench;

impl Benchmark for FibBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "Fib",
            origin: "-",
            domain: "Integer",
            structure: "At each node",
            task_directives: 2,
            tasks_inside: "single",
            nested_tasks: true,
            app_cutoff: "depth-based",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        format!("{}", n_for(class))
    }

    fn versions(&self) -> Vec<VersionSpec> {
        VersionSpec::matrix(false)
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let v = fib(n_for(class));
        RunOutput::new(fnv1a_u64(v), format!("fib({}) = {v}", n_for(class)))
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let mode = match version.cutoff {
            CutoffMode::NoCutoff => FibMode::NoCutoff,
            CutoffMode::IfClause => FibMode::IfClause,
            CutoffMode::Manual => FibMode::Manual,
        };
        let untied = version.tiedness == Tiedness::Untied;
        let v = fib_parallel(rt, n_for(class), mode, untied, cutoff_for(class));
        RunOutput::new(fnv1a_u64(v), format!("fib({}) = {v}", n_for(class)))
    }

    fn verify(&self, class: InputClass, output: &RunOutput) -> Verification {
        // Self-verification via an independent algorithm (fast doubling).
        let want = fnv1a_u64(fib_fast(n_for(class)));
        if output.checksum == want {
            Verification::SelfChecked
        } else {
            Verification::Failed(format!(
                "fib({}) mismatch: {}",
                n_for(class),
                output.summary
            ))
        }
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let p = CountingProbe::new();
        fib_profiled(&p, n_for(class));
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Fine-grain tasks need the manual cut-off to scale (paper §IV-B).
        VersionSpec::default()
            .cutoff(CutoffMode::Manual)
            .tied(Tiedness::Untied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_run_verifies() {
        let b = FibBench;
        let out = b.run_serial(InputClass::Test);
        assert_eq!(b.verify(InputClass::Test, &out), Verification::SelfChecked);
    }

    #[test]
    fn parallel_versions_verify() {
        let b = FibBench;
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            assert_eq!(
                b.verify(InputClass::Test, &out),
                Verification::SelfChecked,
                "{v}"
            );
        }
    }

    #[test]
    fn corrupted_output_fails_verification() {
        let b = FibBench;
        let mut out = b.run_serial(InputClass::Test);
        out.checksum ^= 1;
        assert!(matches!(
            b.verify(InputClass::Test, &out),
            Verification::Failed(_)
        ));
    }

    #[test]
    fn characterization_scales_with_class() {
        let b = FibBench;
        let t = b.characterize(InputClass::Test);
        assert!(t.tasks > 10_000, "test class should still have many tasks");
        assert_eq!(t.writes_private, 0, "fib writes only to parent stacks");
        // The paper's signature: 100% non-private writes.
        assert_eq!(t.writes_total(), t.writes_shared);
    }

    #[test]
    fn meta_matches_table1() {
        let m = FibBench.meta();
        assert_eq!(m.task_directives, 2);
        assert!(m.nested_tasks);
        assert_eq!(m.app_cutoff, "depth-based");
    }
}
