//! Serial Fibonacci: the reference run and the instrumented
//! characterisation run.
//!
//! "While not representative of an efficient fibonacci computation it is
//! still useful because it is a simple test case of a deep tree composed of
//! very fine grain tasks" (§III-B). The instrumented variant emits exactly
//! the events the parallel no-cutoff version would generate: one potential
//! task per recursive call, one addition and one write to the parent's
//! result slot per internal node, and one taskwait per internal node.

use bots_profile::Probe;

/// Plain recursive Fibonacci (the timing reference).
pub fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Bytes the parallel version captures per task: `n` plus the parent result
/// slot pointer.
pub const ENV_BYTES: u64 = 16;

/// Instrumented recursion mirroring the task version's event stream.
pub fn fib_profiled<P: Probe>(p: &P, n: u64) -> u64 {
    if n < 2 {
        // Leaf: still writes its result to the parent's slot.
        p.write_shared(1);
        return n;
    }
    p.task(ENV_BYTES);
    p.task(ENV_BYTES);
    let a = fib_profiled(p, n - 1);
    let b = fib_profiled(p, n - 2);
    p.taskwait();
    p.ops(1);
    p.write_shared(1); // result goes to the parent task's stack
    a + b
}

/// Fast-doubling Fibonacci: an independent O(log n) algorithm used for
/// self-verification of the recursive kernels.
pub fn fib_fast(n: u64) -> u64 {
    fn go(n: u64) -> (u64, u64) {
        // Returns (F(n), F(n+1)).
        if n == 0 {
            return (0, 1);
        }
        let (a, b) = go(n / 2);
        let c = a.wrapping_mul(b.wrapping_mul(2).wrapping_sub(a));
        let d = a.wrapping_mul(a).wrapping_add(b.wrapping_mul(b));
        if n.is_multiple_of(2) {
            (c, d)
        } else {
            (d, c.wrapping_add(d))
        }
    }
    go(n).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_profile::{CountingProbe, NullProbe};

    #[test]
    fn known_values() {
        let expect = [0u64, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for (n, &want) in expect.iter().enumerate() {
            assert_eq!(fib(n as u64), want);
        }
    }

    #[test]
    fn fast_doubling_matches_recursion() {
        for n in 0..30 {
            assert_eq!(fib_fast(n), fib(n), "n={n}");
        }
    }

    #[test]
    fn fast_doubling_known_large() {
        assert_eq!(fib_fast(50), 12_586_269_025);
        assert_eq!(fib_fast(90), 2_880_067_194_370_816_120);
    }

    #[test]
    fn profiled_matches_plain() {
        assert_eq!(fib_profiled(&NullProbe, 20), fib(20));
    }

    #[test]
    fn profile_counts_match_structure() {
        // fib call tree for n: internal nodes I(n) and leaves L(n) satisfy
        // L(n) = fib(n+1), I(n) = fib(n+1) - 1, total calls = 2*fib(n+1)-1.
        let p = CountingProbe::new();
        let n = 12;
        fib_profiled(&p, n);
        let c = p.counts();
        let leaves = fib(n + 1);
        let internals = leaves - 1;
        // Every call except the root arrives via a task() creation point.
        assert_eq!(c.tasks, 2 * leaves - 2);
        assert_eq!(c.taskwaits, internals);
        assert_eq!(c.ops, internals);
        // Every call writes its result once (to the parent's stack).
        assert_eq!(c.writes_shared, leaves + internals);
        assert_eq!(c.writes_private, 0);
        // The paper's headline fib ratios: ~2.5 ops/task, 0.5 taskwaits/task,
        // 100% non-private writes — ops/task here is I/(2L-2) ≈ 0.5 because
        // we count pure additions only; writes are 100% non-private as in
        // the paper.
        assert_eq!(c.writes_private, 0);
        assert_eq!(c.env_bytes, (2 * leaves - 2) * ENV_BYTES);
    }
}
