//! Task-parallel Fibonacci in the three cut-off styles of §III-A.
//!
//! Results flow to the parent through a shared slot on the parent task's
//! frame, guarded by a `taskgroup` barrier (the OpenMP code uses shared
//! variables + `taskwait`; see the runtime crate docs for why the Rust
//! version needs the group's deep wait to make the borrow sound).

use std::sync::atomic::{AtomicU64, Ordering};

use bots_runtime::{Runtime, Scope, TaskAttrs};

use crate::serial::fib;

/// Which cut-off style to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibMode {
    /// Spawn at every node, unboundedly.
    NoCutoff,
    /// `if(depth < cutoff)` clause on every spawn.
    IfClause,
    /// Plain serial call beyond the cut-off depth.
    Manual,
}

/// Computes `fib(n)` on `rt`.
pub fn fib_parallel(rt: &Runtime, n: u64, mode: FibMode, untied: bool, cutoff: u32) -> u64 {
    let attrs = TaskAttrs::default().with_tied(!untied);
    rt.region(move |s| {
        let out = AtomicU64::new(0);
        match mode {
            FibMode::NoCutoff => node_nocutoff(s, n, attrs, &out),
            FibMode::IfClause => node_if(s, n, 0, cutoff, attrs, &out),
            FibMode::Manual => node_manual(s, n, 0, cutoff, attrs, &out),
        }
        out.load(Ordering::Relaxed)
    })
    .join()
}

fn node_nocutoff(s: &Scope<'_>, n: u64, attrs: TaskAttrs, out: &AtomicU64) {
    if n < 2 {
        out.store(n, Ordering::Relaxed);
        return;
    }
    let a = AtomicU64::new(0);
    let b = AtomicU64::new(0);
    s.taskgroup(|s| {
        // TaskBuilder form of `spawn_with(attrs, ...)`: attributes chain
        // onto the builder, `spawn()` creates the task.
        s.task(|s| node_nocutoff(s, n - 1, attrs, &a))
            .with_attrs(attrs)
            .spawn();
        s.task(|s| node_nocutoff(s, n - 2, attrs, &b))
            .with_attrs(attrs)
            .spawn();
    });
    out.store(
        a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
}

fn node_if(s: &Scope<'_>, n: u64, depth: u32, cutoff: u32, attrs: TaskAttrs, out: &AtomicU64) {
    if n < 2 {
        out.store(n, Ordering::Relaxed);
        return;
    }
    // The condition travels on the builder's if-clause: when it is false
    // the runtime runs the child inline but still performs bookkeeping.
    let a = AtomicU64::new(0);
    let b = AtomicU64::new(0);
    s.taskgroup(|s| {
        s.task(|s| node_if(s, n - 1, depth + 1, cutoff, attrs, &a))
            .with_attrs(attrs)
            .if_clause(depth < cutoff)
            .spawn();
        s.task(|s| node_if(s, n - 2, depth + 1, cutoff, attrs, &b))
            .with_attrs(attrs)
            .if_clause(depth < cutoff)
            .spawn();
    });
    out.store(
        a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
}

fn node_manual(s: &Scope<'_>, n: u64, depth: u32, cutoff: u32, attrs: TaskAttrs, out: &AtomicU64) {
    if n < 2 {
        out.store(n, Ordering::Relaxed);
        return;
    }
    if depth >= cutoff {
        // The runtime never sees anything below this point.
        out.store(fib(n), Ordering::Relaxed);
        return;
    }
    let a = AtomicU64::new(0);
    let b = AtomicU64::new(0);
    s.taskgroup(|s| {
        s.task(|s| node_manual(s, n - 1, depth + 1, cutoff, attrs, &a))
            .with_attrs(attrs)
            .spawn();
        s.task(|s| node_manual(s, n - 2, depth + 1, cutoff, attrs, &b))
            .with_attrs(attrs)
            .spawn();
    });
    out.store(
        a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::fib_fast;

    #[test]
    fn all_modes_agree_with_reference() {
        let rt = Runtime::with_threads(4);
        for mode in [FibMode::NoCutoff, FibMode::IfClause, FibMode::Manual] {
            for untied in [false, true] {
                let got = fib_parallel(&rt, 18, mode, untied, 6);
                assert_eq!(got, fib_fast(18), "mode={mode:?} untied={untied}");
            }
        }
    }

    #[test]
    fn manual_cutoff_hides_tasks_from_runtime() {
        let rt = Runtime::with_threads(2);
        let before = rt.stats();
        fib_parallel(&rt, 16, FibMode::Manual, false, 3);
        let manual = rt.stats().since(&before);

        let before = rt.stats();
        fib_parallel(&rt, 16, FibMode::IfClause, false, 3);
        let ifc = rt.stats().since(&before);

        // Same depth bound: the deferred-task counts match, but the
        // if-clause version reports every pruned task to the runtime while
        // the manual version reports none.
        assert_eq!(manual.spawned, ifc.spawned);
        assert_eq!(manual.inlined_if, 0);
        assert!(ifc.inlined_if > 0);
        assert!(ifc.creation_points() > manual.creation_points());
    }

    #[test]
    fn cutoff_zero_serialises_everything() {
        let rt = Runtime::with_threads(4);
        let before = rt.stats();
        let got = fib_parallel(&rt, 15, FibMode::Manual, false, 0);
        assert_eq!(got, fib_fast(15));
        assert_eq!(rt.stats().since(&before).spawned, 0);
    }

    #[test]
    fn single_thread_still_correct() {
        let rt = Runtime::with_threads(1);
        assert_eq!(
            fib_parallel(&rt, 17, FibMode::NoCutoff, false, 0),
            fib_fast(17)
        );
    }
}
