//! Square-matrix support for Strassen: an owned row-major matrix, quadrant
//! extraction/combination, elementwise sums, and the cache-blocked
//! classical multiply used below the recursion leaf.

use bots_profile::Probe;

/// Owned row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of side `n`.
    pub fn zero(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Wraps an existing row-major buffer (must be `n × n`).
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        Matrix { n, data }
    }

    /// Deterministic random matrix (entries in `[-1, 1)`).
    pub fn random(n: usize, seed: u64) -> Self {
        Matrix::from_vec(n, bots_inputs::arrays::dense_matrix(n, seed))
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.n + c]
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Copies quadrant `(qr, qc)` (each 0 or 1) into a new `n/2` matrix.
    pub fn quadrant(&self, qr: usize, qc: usize) -> Matrix {
        let h = self.n / 2;
        let mut out = Matrix::zero(h);
        for r in 0..h {
            let src = (qr * h + r) * self.n + qc * h;
            out.data[r * h..(r + 1) * h].copy_from_slice(&self.data[src..src + h]);
        }
        out
    }

    /// Assembles this matrix from four quadrants (inverse of
    /// [`quadrant`](Self::quadrant)).
    pub fn from_quadrants(c11: &Matrix, c12: &Matrix, c21: &Matrix, c22: &Matrix) -> Matrix {
        let h = c11.n;
        debug_assert!(c12.n == h && c21.n == h && c22.n == h);
        let n = 2 * h;
        let mut out = Matrix::zero(n);
        for r in 0..h {
            out.data[r * n..r * n + h].copy_from_slice(&c11.data[r * h..(r + 1) * h]);
            out.data[r * n + h..(r + 1) * n].copy_from_slice(&c12.data[r * h..(r + 1) * h]);
            let rr = (h + r) * n;
            out.data[rr..rr + h].copy_from_slice(&c21.data[r * h..(r + 1) * h]);
            out.data[rr + h..rr + n].copy_from_slice(&c22.data[r * h..(r + 1) * h]);
        }
        out
    }

    /// `self + other`, elementwise.
    pub fn add(&self, other: &Matrix) -> Matrix {
        debug_assert_eq!(self.n, other.n);
        Matrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// `self - other`, elementwise.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        debug_assert_eq!(self.n, other.n);
        Matrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Maximum absolute elementwise difference.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Classical multiply (`c = a·b`) with an i-k-j loop order (streams rows of
/// `b`, vectorises well). Used below the Strassen leaf size and as the
/// verification reference.
pub fn classical_mul<P: Probe>(p: &P, a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.n;
    debug_assert_eq!(n, b.n);
    let mut c = Matrix::zero(n);
    for i in 0..n {
        for k in 0..n {
            let aik = a.data[i * n + k];
            let brow = &b.data[k * n..(k + 1) * n];
            let crow = &mut c.data[i * n..(i + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    }
    p.ops(2 * (n * n * n) as u64);
    p.write_shared((n * n) as u64);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_profile::NullProbe;

    #[test]
    fn quadrant_roundtrip() {
        let m = Matrix::random(8, 3);
        let q11 = m.quadrant(0, 0);
        let q12 = m.quadrant(0, 1);
        let q21 = m.quadrant(1, 0);
        let q22 = m.quadrant(1, 1);
        let back = Matrix::from_quadrants(&q11, &q12, &q21, &q22);
        assert_eq!(m, back);
    }

    #[test]
    fn add_sub_inverse() {
        let a = Matrix::random(16, 1);
        let b = Matrix::random(16, 2);
        let sum = a.add(&b);
        let back = sum.sub(&b);
        assert!(back.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn classical_identity() {
        let n = 8;
        let a = Matrix::random(n, 5);
        let mut eye = Matrix::zero(n);
        for i in 0..n {
            *eye.at_mut(i, i) = 1.0;
        }
        let c = classical_mul(&NullProbe, &a, &eye);
        assert!(c.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn classical_known_2x2() {
        let a = Matrix::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = classical_mul(&NullProbe, &a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }
}
