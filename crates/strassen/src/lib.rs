//! # bots-strassen — the BOTS Strassen kernel
//!
//! Strassen's seven-product recursive matrix multiplication: each
//! decomposition spawns seven product tasks; the classical cache-blocked
//! multiply takes over at 64×64 leaves, and depth-based cut-off versions
//! (if-clause and manual) stop task creation below a configurable level.
//! Parallel results are bitwise identical to the serial recursion (same
//! arithmetic, no reductions).
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_strassen::{strassen_parallel, StrassenMode, Matrix};
//!
//! let rt = Runtime::with_threads(2);
//! let a = Matrix::random(128, 1);
//! let b = Matrix::random(128, 2);
//! let c = strassen_parallel(&rt, &a, &b, StrassenMode::Manual, false, 1);
//! assert_eq!(c.n(), 128);
//! ```
#![warn(missing_docs)]

mod bench;
mod matrix;
mod parallel;
mod serial;

pub use bench::{cutoff_for, n_for, StrassenBench};
pub use matrix::{classical_mul, Matrix};
pub use parallel::{strassen_parallel, StrassenMode};
pub use serial::{strassen_serial, LEAF};
