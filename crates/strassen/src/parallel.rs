//! Task-parallel Strassen: "for each decomposition a task is created"
//! (§III-B) — seven product tasks per node, with depth-based cut-off
//! versions to stop spawning tiny tasks.

use bots_profile::NullProbe;
use bots_runtime::{Runtime, Scope, TaskAttrs};

use crate::matrix::{classical_mul, Matrix};
use crate::serial::{combine, seven_pairs, strassen_serial, LEAF};

/// Cut-off style for Strassen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrassenMode {
    /// Spawn all seven products at every level.
    NoCutoff,
    /// `if(depth < cutoff)` clause on the product tasks.
    IfClause,
    /// Serial recursion below the cut-off depth.
    Manual,
}

/// Multiplies `a · b` on `rt`.
pub fn strassen_parallel(
    rt: &Runtime,
    a: &Matrix,
    b: &Matrix,
    mode: StrassenMode,
    untied: bool,
    cutoff: u32,
) -> Matrix {
    let attrs = TaskAttrs::default().with_tied(!untied);
    rt.parallel(move |s| node(s, a, b, mode, attrs, 0, cutoff))
}

fn node(
    s: &Scope<'_>,
    a: &Matrix,
    b: &Matrix,
    mode: StrassenMode,
    attrs: TaskAttrs,
    depth: u32,
    cutoff: u32,
) -> Matrix {
    let n = a.n();
    if n <= LEAF {
        return classical_mul(&NullProbe, a, b);
    }
    if mode == StrassenMode::Manual && depth >= cutoff {
        return strassen_serial(&NullProbe, a, b);
    }
    let pairs = seven_pairs(&NullProbe, a, b);
    let mut slots: [Option<Matrix>; 7] = Default::default();
    {
        let spawn_attrs = match mode {
            StrassenMode::IfClause => attrs.with_if(depth < cutoff),
            _ => attrs,
        };
        let mut slot_iter = slots.iter_mut();
        s.taskgroup(|s| {
            // The pairs stay owned by this frame (the taskgroup's deep wait
            // keeps it alive); each task borrows its pair instead of moving
            // two 32-byte matrices into the closure, keeping the capture
            // inside the task record's inline budget (spill telemetry
            // asserts this suite-wide).
            for (pa, pb) in &pairs {
                let slot = slot_iter.next().expect("seven slots");
                s.spawn_with(spawn_attrs, move |s| {
                    *slot = Some(node(s, pa, pb, mode, attrs, depth + 1, cutoff));
                });
            }
        });
    }
    let m = slots.map(|m| m.expect("product task completed"));
    combine(&NullProbe, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_match_serial() {
        let rt = Runtime::with_threads(4);
        let n = 4 * LEAF;
        let a = Matrix::random(n, 1);
        let b = Matrix::random(n, 2);
        let want = strassen_serial(&NullProbe, &a, &b);
        for mode in [
            StrassenMode::NoCutoff,
            StrassenMode::IfClause,
            StrassenMode::Manual,
        ] {
            for untied in [false, true] {
                let got = strassen_parallel(&rt, &a, &b, mode, untied, 1);
                // Identical arithmetic ⇒ bitwise equal.
                assert_eq!(got, want, "mode={mode:?} untied={untied}");
            }
        }
    }

    #[test]
    fn matches_classical_numerically() {
        let rt = Runtime::with_threads(4);
        let n = 2 * LEAF;
        let a = Matrix::random(n, 7);
        let b = Matrix::random(n, 8);
        let want = classical_mul(&NullProbe, &a, &b);
        let got = strassen_parallel(&rt, &a, &b, StrassenMode::NoCutoff, false, 0);
        assert!(got.max_abs_diff(&want) < 1e-8);
    }

    #[test]
    fn single_thread_works() {
        let rt = Runtime::with_threads(1);
        let n = 2 * LEAF;
        let a = Matrix::random(n, 3);
        let b = Matrix::random(n, 4);
        let got = strassen_parallel(&rt, &a, &b, StrassenMode::Manual, false, 2);
        assert_eq!(got, strassen_serial(&NullProbe, &a, &b));
    }
}
