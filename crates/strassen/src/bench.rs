//! `Benchmark` wiring for Strassen.

use bots_inputs::InputClass;
use bots_profile::{CountingProbe, NullProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{
    fnv1a_f64, BenchMeta, Benchmark, CutoffMode, RunOutput, Tiedness, Verification, VersionSpec,
};

use crate::matrix::Matrix;
use crate::parallel::{strassen_parallel, StrassenMode};
use crate::serial::strassen_serial;

/// Matrix side per class.
pub fn n_for(class: InputClass) -> usize {
    class.pick([128, 512, 2048, 4096])
}

/// Depth cut-off per class for the if/manual versions.
pub fn cutoff_for(class: InputClass) -> u32 {
    class.pick([1, 2, 3, 3])
}

const SEED_A: u64 = 0x57A5_0001;
const SEED_B: u64 = 0x57A5_0002;

fn digest(m: &Matrix) -> u64 {
    let mut acc = 0u64;
    for (i, &v) in m.data().iter().enumerate() {
        acc ^= fnv1a_f64(v).rotate_left((i % 59) as u32);
    }
    acc
}

/// Strassen as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct StrassenBench;

impl Benchmark for StrassenBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "Strassen",
            origin: "Cilk",
            domain: "Dense linear algebra",
            structure: "At each node",
            task_directives: 8,
            tasks_inside: "single",
            nested_tasks: true,
            app_cutoff: "depth-based",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        let n = n_for(class);
        format!("{n}x{n} matrix")
    }

    fn versions(&self) -> Vec<VersionSpec> {
        VersionSpec::matrix(false)
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let n = n_for(class);
        let a = Matrix::random(n, SEED_A);
        let b = Matrix::random(n, SEED_B);
        let c = strassen_serial(&NullProbe, &a, &b);
        RunOutput::new(digest(&c), format!("{n}x{n} product"))
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let n = n_for(class);
        let a = Matrix::random(n, SEED_A);
        let b = Matrix::random(n, SEED_B);
        let mode = match version.cutoff {
            CutoffMode::NoCutoff => StrassenMode::NoCutoff,
            CutoffMode::IfClause => StrassenMode::IfClause,
            CutoffMode::Manual => StrassenMode::Manual,
        };
        let untied = version.tiedness == Tiedness::Untied;
        let c = strassen_parallel(rt, &a, &b, mode, untied, cutoff_for(class));
        RunOutput::new(digest(&c), format!("{n}x{n} product"))
    }

    fn verify(&self, _class: InputClass, _output: &RunOutput) -> Verification {
        // Identical arithmetic serial vs parallel ⇒ compare digests.
        Verification::AgainstSerial
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let n = n_for(class);
        let a = Matrix::random(n, SEED_A);
        let b = Matrix::random(n, SEED_B);
        let p = CountingProbe::new();
        strassen_serial(&p, &a, &b);
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3: "strassen (nocutoff-tied)".
        VersionSpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_suite::runner;

    #[test]
    fn parallel_versions_verify() {
        let b = StrassenBench;
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            runner::verify(&b, InputClass::Test, &out).unwrap();
        }
    }

    #[test]
    fn characterization_is_compute_heavy() {
        let c = StrassenBench.characterize(InputClass::Test);
        assert!(c.tasks > 0);
        // Paper: Strassen has the largest ops/task (~800 K) of the suite.
        let ops_per_task = c.ops as f64 / c.tasks as f64;
        assert!(ops_per_task > 10_000.0, "ops/task={ops_per_task}");
    }
}
