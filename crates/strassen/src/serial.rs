//! Serial Strassen: the reference recursion (identical arithmetic to the
//! parallel version) plus instrumentation.
//!
//! Classic seven-product scheme (Strassen 1969, via the paper's Fischer &
//! Probert reference):
//!
//! ```text
//! M1 = (A11+A22)(B11+B22)   M5 = (A11+A12)B22
//! M2 = (A21+A22)B11         M6 = (A21−A11)(B11+B12)
//! M3 = A11(B12−B22)         M7 = (A12−A22)(B21+B22)
//! M4 = A22(B21−B11)
//! C11 = M1+M4−M5+M7   C12 = M3+M5
//! C21 = M2+M4         C22 = M1−M2+M3+M6
//! ```

use bots_profile::Probe;

use crate::matrix::{classical_mul, Matrix};

/// Below this side length the classical multiply takes over.
pub const LEAF: usize = 64;

/// The seven (A-combination, B-combination) pairs of the scheme, computed
/// from the quadrants of `a` and `b`. Shared by the serial and parallel
/// recursions so their arithmetic is identical.
pub fn seven_pairs<P: Probe>(p: &P, a: &Matrix, b: &Matrix) -> [(Matrix, Matrix); 7] {
    let (a11, a12, a21, a22) = (
        a.quadrant(0, 0),
        a.quadrant(0, 1),
        a.quadrant(1, 0),
        a.quadrant(1, 1),
    );
    let (b11, b12, b21, b22) = (
        b.quadrant(0, 0),
        b.quadrant(0, 1),
        b.quadrant(1, 0),
        b.quadrant(1, 1),
    );
    let h = a11.n();
    // 10 elementwise half-size additions/subtractions:
    p.ops(10 * (h * h) as u64);
    p.write_private(10 * (h * h) as u64);
    [
        (a11.add(&a22), b11.add(&b22)),
        (a21.add(&a22), b11.clone()),
        (a11.clone(), b12.sub(&b22)),
        (a22.clone(), b21.sub(&b11)),
        (a11.add(&a12), b22.clone()),
        (a21.sub(&a11), b11.add(&b12)),
        (a12.sub(&a22), b21.add(&b22)),
    ]
}

/// Combines the seven products into the result matrix.
pub fn combine<P: Probe>(p: &P, m: [Matrix; 7]) -> Matrix {
    let [m1, m2, m3, m4, m5, m6, m7] = m;
    let c11 = m1.add(&m4).sub(&m5).add(&m7);
    let c12 = m3.add(&m5);
    let c21 = m2.add(&m4);
    let c22 = m1.sub(&m2).add(&m3).add(&m6);
    let h = c11.n();
    p.ops(8 * (h * h) as u64);
    p.write_shared(4 * (h * h) as u64);
    Matrix::from_quadrants(&c11, &c12, &c21, &c22)
}

/// Serial Strassen multiply with instrumentation. `depth`/`emit_tasks`
/// mirror the task structure of the no-cutoff parallel version.
pub fn strassen_serial<P: Probe>(p: &P, a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.n();
    assert_eq!(n, b.n());
    assert!(
        n.is_power_of_two(),
        "Strassen kernel needs power-of-two sides, got {n}"
    );
    if n <= LEAF {
        return classical_mul(p, a, b);
    }
    let pairs = seven_pairs(p, a, b);
    let mut products = Vec::with_capacity(7);
    for (pa, pb) in pairs {
        // Each product is a potential task capturing two submatrix handles.
        p.task(64);
        products.push(strassen_serial(p, &pa, &pb));
    }
    p.taskwait();
    let m: [Matrix; 7] = products.try_into().expect("exactly seven products");
    combine(p, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_profile::{CountingProbe, NullProbe};

    #[test]
    fn matches_classical_small() {
        for n in [2usize, 4, 8, 64, 128] {
            let a = Matrix::random(n, 10 + n as u64);
            let b = Matrix::random(n, 20 + n as u64);
            let want = classical_mul(&NullProbe, &a, &b);
            let got = strassen_serial(&NullProbe, &a, &b);
            assert!(
                got.max_abs_diff(&want) < 1e-9 * n as f64,
                "n={n}, diff={}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn task_count_follows_seven_ary_tree() {
        let p = CountingProbe::new();
        let n = 4 * LEAF; // two levels of recursion
        let a = Matrix::random(n, 1);
        let b = Matrix::random(n, 2);
        strassen_serial(&p, &a, &b);
        let c = p.counts();
        // Level 1: 7 tasks; level 2: 49 tasks.
        assert_eq!(c.tasks, 7 + 49);
        assert_eq!(c.taskwaits, 1 + 7);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn odd_sizes_rejected() {
        let a = Matrix::zero(100);
        let b = Matrix::zero(100);
        let _ = strassen_serial(&NullProbe, &a, &b);
    }
}
