//! Property tests for Strassen: agreement with the classical multiply on
//! arbitrary matrices, algebraic identities, and serial/parallel bitwise
//! agreement.

use bots_profile::NullProbe;
use bots_runtime::Runtime;
use bots_strassen::{classical_mul, strassen_parallel, strassen_serial, Matrix, StrassenMode};
use proptest::prelude::*;

fn matrix_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| Matrix::from_vec(n, data))
}

fn sized_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    prop_oneof![Just(64usize), Just(128), Just(256)]
        .prop_flat_map(|n| (matrix_strategy(n), matrix_strategy(n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strassen_matches_classical((a, b) in sized_pair()) {
        let want = classical_mul(&NullProbe, &a, &b);
        let got = strassen_serial(&NullProbe, &a, &b);
        let diff = got.max_abs_diff(&want);
        prop_assert!(diff < 1e-9 * a.n() as f64, "diff {diff}");
    }

    #[test]
    fn parallel_is_bitwise_serial((a, b) in sized_pair(), threads in 1usize..5) {
        let rt = Runtime::with_threads(threads);
        let want = strassen_serial(&NullProbe, &a, &b);
        let got = strassen_parallel(&rt, &a, &b, StrassenMode::NoCutoff, threads % 2 == 1, 0);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn identity_is_neutral(a in matrix_strategy(128)) {
        let mut eye = Matrix::zero(128);
        for i in 0..128 {
            *eye.at_mut(i, i) = 1.0;
        }
        let got = strassen_serial(&NullProbe, &a, &eye);
        prop_assert!(got.max_abs_diff(&a) < 1e-9);
        let got = strassen_serial(&NullProbe, &eye, &a);
        prop_assert!(got.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn distributes_over_addition(
        (a, b) in sized_pair(),
        c_data in proptest::collection::vec(-1.0f64..1.0, 64 * 64),
    ) {
        // Only exercise the 64-sized case for the third operand.
        prop_assume!(a.n() == 64);
        let c = Matrix::from_vec(64, c_data);
        // a·(b + c) == a·b + a·c  (up to fp error)
        let lhs = strassen_serial(&NullProbe, &a, &b.add(&c));
        let rhs = strassen_serial(&NullProbe, &a, &b)
            .add(&strassen_serial(&NullProbe, &a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}
