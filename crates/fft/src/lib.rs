//! # bots-fft — the BOTS FFT kernel
//!
//! One-dimensional complex FFT via the Cooley-Tukey divide-and-conquer
//! decomposition: each split spawns tasks for the two half-transforms and
//! for every chunk of the twiddle-combine loop; transforms of ≤ 256 points
//! run an iterative in-place base case. Verified against a direct O(n²)
//! DFT, round-trips, Parseval, and bitwise equality with the serial run
//! (the butterfly network is reduction-free, so parallel results are
//! exactly reproducible).
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_fft::{fft_parallel, ifft_parallel, C64};
//!
//! let rt = Runtime::with_threads(2);
//! let mut x: Vec<C64> = (0..1024).map(|i| C64::new((i % 7) as f64, 0.0)).collect();
//! let orig = x.clone();
//! fft_parallel(&rt, &mut x, false);
//! ifft_parallel(&rt, &mut x, false);
//! assert!(x.iter().zip(&orig).all(|(a, b)| (*a - *b).abs() < 1e-9));
//! ```
#![warn(missing_docs)]

mod bench;
mod complex;
mod parallel;
mod plan;
mod serial;

pub use bench::{n_for, FftBench};
pub use complex::C64;
pub use parallel::{fft_parallel, ifft_parallel};
pub use plan::Plan;
pub use serial::{dft_naive, fft_base, fft_serial, ifft_serial, BASE_SIZE, COMBINE_CHUNK};
