//! Twiddle-factor plan: precomputed roots of unity shared by every level
//! of the recursion (`w_n^k = table[k · N/n]`).

use crate::complex::C64;

/// Precomputed twiddles for transforms of size up to `n` (a power of two).
pub struct Plan {
    /// `twiddles[k] = e^(-2πik/N)` for `k < N/2`.
    twiddles: Vec<C64>,
    n: usize,
}

impl Plan {
    /// Builds a plan for size-`n` transforms.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FFT size must be a power of two, got {n}"
        );
        let half = (n / 2).max(1);
        let step = -2.0 * std::f64::consts::PI / n as f64;
        let twiddles = (0..half).map(|k| C64::cis(step * k as f64)).collect();
        Plan { twiddles, n }
    }

    /// Planned root size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when planned for size ≤ 1.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Forward twiddle `w_m^k` for a sub-transform of size `m` (which must
    /// divide the plan size).
    #[inline]
    pub fn forward(&self, k: usize, m: usize) -> C64 {
        debug_assert!(m <= self.n && self.n.is_multiple_of(m));
        self.twiddles[k * (self.n / m)]
    }

    /// Inverse twiddle (conjugate).
    #[inline]
    pub fn inverse(&self, k: usize, m: usize) -> C64 {
        self.forward(k, m).conj()
    }

    /// Twiddle selected by direction.
    #[inline]
    pub fn twiddle(&self, k: usize, m: usize, invert: bool) -> C64 {
        if invert {
            self.inverse(k, m)
        } else {
            self.forward(k, m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twiddles_are_roots_of_unity() {
        let plan = Plan::new(64);
        for k in 0..32 {
            let w = plan.forward(k, 64);
            // w^64 == 1: check via angle.
            let angle = (-2.0 * std::f64::consts::PI / 64.0) * k as f64;
            assert!((w.re - angle.cos()).abs() < 1e-12);
            assert!((w.im - angle.sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn subtransform_twiddles_stride() {
        let plan = Plan::new(16);
        // w_4^1 must equal e^(-2πi/4) = -i.
        let w = plan.forward(1, 4);
        assert!(w.re.abs() < 1e-12);
        assert!((w.im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_is_conjugate() {
        let plan = Plan::new(8);
        for k in 0..4 {
            let f = plan.forward(k, 8);
            let i = plan.inverse(k, 8);
            assert_eq!(f.conj(), i);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Plan::new(12);
    }
}
