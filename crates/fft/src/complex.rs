//! A minimal `f64` complex type (no external numerics dependency).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Constructs `re + im·i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Zero.
    pub const ZERO: C64 = C64::new(0.0, 0.0);

    /// One.
    pub const ONE: C64 = C64::new(1.0, 0.0);

    /// `e^(iθ)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let w = C64::cis(k as f64 * 0.7);
            assert!((w.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conj_and_norm() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        assert!((a.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn euler_identity() {
        let w = C64::cis(std::f64::consts::PI);
        assert!((w.re + 1.0).abs() < EPS);
        assert!(w.im.abs() < EPS);
    }
}
