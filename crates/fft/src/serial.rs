//! Serial Cooley-Tukey FFT: the recursive decimation-in-time decomposition
//! the parallel version parallelises, an iterative base case, and a direct
//! O(n²) DFT used for verification on small sizes.

use bots_profile::Probe;

use crate::complex::C64;
use crate::plan::Plan;

/// Transforms at or below this size run the iterative in-place base case
/// (the task-granularity floor, like the Cilk version's coarsened leaves).
pub const BASE_SIZE: usize = 256;

/// In-place iterative radix-2 FFT (bit-reversal + butterfly passes).
/// `x.len()` must be a power of two ≤ the plan size.
pub fn fft_base<P: Probe>(p: &P, x: &mut [C64], plan: &Plan, invert: bool) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    debug_assert!(n.is_power_of_two());
    // Bit reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            x.swap(i, j);
        }
    }
    p.write_shared(n as u64 / 2);
    // Butterfly passes.
    let mut m = 2;
    while m <= n {
        let half = m / 2;
        for start in (0..n).step_by(m) {
            for k in 0..half {
                let w = plan.twiddle(k, m, invert);
                let t = w * x[start + k + half];
                let u = x[start + k];
                x[start + k] = u + t;
                x[start + k + half] = u - t;
            }
        }
        p.ops(10 * (n as u64 / 2)); // complex mul (6) + two adds (4)
        p.write_shared(n as u64);
        m *= 2;
    }
}

/// Recursive decimation-in-time FFT, sequential. `scratch` must match `x`
/// in length. Emits the task events of the parallel version: two child
/// tasks per split plus one per combine chunk.
pub fn fft_rec<P: Probe>(p: &P, x: &mut [C64], scratch: &mut [C64], plan: &Plan, invert: bool) {
    let n = x.len();
    if n <= BASE_SIZE {
        fft_base(p, x, plan, invert);
        return;
    }
    let half = n / 2;
    // Decimate: evens to scratch[..half], odds to scratch[half..].
    for i in 0..half {
        scratch[i] = x[2 * i];
        scratch[half + i] = x[2 * i + 1];
    }
    p.write_shared(n as u64);
    {
        let (even, odd) = scratch.split_at_mut(half);
        let (xe, xo) = x.split_at_mut(half);
        p.task(64);
        fft_rec(p, even, xe, plan, invert);
        p.task(64);
        fft_rec(p, odd, xo, plan, invert);
        p.taskwait();
    }
    // Combine. The parallel version chunks this loop into tasks.
    let (even, odd) = scratch.split_at(half);
    for chunk_start in (0..half).step_by(COMBINE_CHUNK) {
        p.task(80);
        let end = (chunk_start + COMBINE_CHUNK).min(half);
        for k in chunk_start..end {
            let t = plan.twiddle(k, n, invert) * odd[k];
            x[k] = even[k] + t;
            x[k + half] = even[k] - t;
        }
        p.ops(10 * (end - chunk_start) as u64);
        p.write_shared(2 * (end - chunk_start) as u64);
    }
    p.taskwait();
}

/// Elements of the combine loop handled per task.
pub const COMBINE_CHUNK: usize = 8192;

/// Forward FFT of `x` (sequential).
pub fn fft_serial<P: Probe>(p: &P, x: &mut [C64]) {
    let plan = Plan::new(x.len());
    let mut scratch = vec![C64::ZERO; x.len()];
    fft_rec(p, x, &mut scratch, &plan, false);
}

/// Inverse FFT of `x` (sequential), including the 1/n normalisation.
pub fn ifft_serial<P: Probe>(p: &P, x: &mut [C64]) {
    let plan = Plan::new(x.len());
    let mut scratch = vec![C64::ZERO; x.len()];
    fft_rec(p, x, &mut scratch, &plan, true);
    let k = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(k);
    }
}

/// Direct O(n²) DFT — the independent reference for verification.
pub fn dft_naive(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    let step = -2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                acc += C64::cis(step * (k * j % n) as f64) * v;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_profile::NullProbe;

    fn signal(n: usize) -> Vec<C64> {
        bots_inputs::arrays::complex_signal(n, 77)
            .into_iter()
            .map(|(re, im)| C64::new(re, im))
            .collect()
    }

    fn close(a: &[C64], b: &[C64], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn base_matches_naive() {
        for n in [2usize, 4, 16, 64, 256] {
            let mut x = signal(n);
            let expect = dft_naive(&x);
            let plan = Plan::new(n);
            fft_base(&NullProbe, &mut x, &plan, false);
            assert!(close(&x, &expect, 1e-8), "n={n}");
        }
    }

    #[test]
    fn recursion_matches_naive_above_base() {
        let n = 2048;
        let mut x = signal(n);
        let expect = dft_naive(&x);
        fft_serial(&NullProbe, &mut x);
        assert!(close(&x, &expect, 1e-7));
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 1 << 14;
        let orig = signal(n);
        let mut x = orig.clone();
        fft_serial(&NullProbe, &mut x);
        ifft_serial(&NullProbe, &mut x);
        assert!(close(&x, &orig, 1e-9));
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 4096;
        let orig = signal(n);
        let mut x = orig.clone();
        fft_serial(&NullProbe, &mut x);
        let time_energy: f64 = orig.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn linearity() {
        let n = 1024;
        let a = signal(n);
        let b: Vec<C64> = signal(n)
            .into_iter()
            .map(|v| v.scale(0.5) + C64::new(0.1, 0.0))
            .collect();
        let sum: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        fft_serial(&NullProbe, &mut fa);
        fft_serial(&NullProbe, &mut fb);
        fft_serial(&NullProbe, &mut fsum);
        let combined: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(close(&fsum, &combined, 1e-8));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 512;
        let mut x = vec![C64::ZERO; n];
        x[0] = C64::ONE;
        fft_serial(&NullProbe, &mut x);
        assert!(x
            .iter()
            .all(|v| (v.re - 1.0).abs() < 1e-10 && v.im.abs() < 1e-10));
    }
}
