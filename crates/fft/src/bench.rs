//! `Benchmark` wiring for FFT.

use bots_inputs::InputClass;
use bots_profile::{CountingProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{fnv1a_f64, BenchMeta, Benchmark, RunOutput, Tiedness, Verification, VersionSpec};

use crate::complex::C64;
use crate::parallel::fft_parallel;
use crate::serial::fft_serial;

/// Transform size per class (powers of two).
pub fn n_for(class: InputClass) -> usize {
    class.pick([1 << 10, 1 << 18, 1 << 22, 1 << 25])
}

const SEED: u64 = 0xFF7_5EED;

fn signal(n: usize) -> Vec<C64> {
    bots_inputs::arrays::complex_signal(n, SEED)
        .into_iter()
        .map(|(re, im)| C64::new(re, im))
        .collect()
}

fn digest(x: &[C64]) -> u64 {
    // XOR-fold per-index hashes: deterministic, order-independent.
    let mut acc = 0u64;
    for (i, v) in x.iter().enumerate() {
        acc ^= fnv1a_f64(v.re).rotate_left((i % 61) as u32)
            ^ fnv1a_f64(v.im).rotate_left((i % 53) as u32);
    }
    acc
}

/// FFT as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct FftBench;

impl Benchmark for FftBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "FFT",
            origin: "Cilk",
            domain: "Spectral method",
            structure: "At leafs",
            task_directives: 41,
            tasks_inside: "single",
            nested_tasks: true,
            app_cutoff: "none",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        let n = n_for(class);
        if n >= 1 << 20 {
            format!("{}M floats", n >> 20)
        } else {
            format!("{}K floats", n >> 10)
        }
    }

    fn versions(&self) -> Vec<VersionSpec> {
        vec![
            VersionSpec::default(),
            VersionSpec::default().tied(Tiedness::Untied),
        ]
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let mut x = signal(n_for(class));
        fft_serial(&bots_profile::NullProbe, &mut x);
        RunOutput::new(digest(&x), format!("fft of {} points", x.len()))
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let mut x = signal(n_for(class));
        fft_parallel(rt, &mut x, version.tiedness == Tiedness::Untied);
        RunOutput::new(digest(&x), format!("fft of {} points", x.len()))
    }

    fn verify(&self, _class: InputClass, _output: &RunOutput) -> Verification {
        // The butterfly network is deterministic and reduction-free, so the
        // parallel result is bit-identical to the serial one; compare.
        Verification::AgainstSerial
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let p = CountingProbe::new();
        let mut x = signal(n_for(class));
        fft_serial(&p, &mut x);
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3: "fft (untied)".
        VersionSpec::default().tied(Tiedness::Untied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_suite::runner;

    #[test]
    fn parallel_matches_serial_checksum() {
        let b = FftBench;
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            runner::verify(&b, InputClass::Test, &out).unwrap();
        }
    }

    #[test]
    fn characterization_counts_tasks() {
        let c = FftBench.characterize(InputClass::Test);
        assert!(c.tasks > 0);
        assert!(c.taskwaits > 0);
        assert!(c.ops > 0);
    }
}
