//! Task-parallel FFT: tasks for the two half-transforms of every split and
//! for each chunk of the twiddle-combine loops ("In each of the divisions
//! multiple tasks are generated", §III-B).

use bots_runtime::{Runtime, Scope, TaskAttrs};

use crate::complex::C64;
use crate::plan::Plan;
use crate::serial::{fft_base, BASE_SIZE, COMBINE_CHUNK};

use bots_profile::NullProbe;

/// Forward FFT of `x` on `rt`.
pub fn fft_parallel(rt: &Runtime, x: &mut [C64], untied: bool) {
    transform(rt, x, untied, false);
    // no normalisation on the forward transform
}

/// Inverse FFT of `x` on `rt` (with 1/n normalisation).
pub fn ifft_parallel(rt: &Runtime, x: &mut [C64], untied: bool) {
    transform(rt, x, untied, true);
    let k = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(k);
    }
}

fn transform(rt: &Runtime, x: &mut [C64], untied: bool, invert: bool) {
    let attrs = TaskAttrs::default().with_tied(!untied);
    let plan = Plan::new(x.len());
    let mut scratch = vec![C64::ZERO; x.len()];
    let scratch_ref = &mut scratch[..];
    let plan_ref = &plan;
    rt.parallel(move |s| {
        fft_task(s, x, scratch_ref, plan_ref, invert, attrs);
    });
}

fn fft_task<'a>(
    s: &Scope<'_>,
    x: &'a mut [C64],
    scratch: &'a mut [C64],
    plan: &'a Plan,
    invert: bool,
    attrs: TaskAttrs,
) {
    let n = x.len();
    if n <= BASE_SIZE {
        fft_base(&NullProbe, x, plan, invert);
        return;
    }
    let half = n / 2;
    for i in 0..half {
        scratch[i] = x[2 * i];
        scratch[half + i] = x[2 * i + 1];
    }
    {
        let (even, odd) = scratch.split_at_mut(half);
        let (xe, xo) = x.split_at_mut(half);
        s.taskgroup(|s| {
            s.spawn_with(attrs, move |s| fft_task(s, even, xe, plan, invert, attrs));
            s.spawn_with(attrs, move |s| fft_task(s, odd, xo, plan, invert, attrs));
        });
    }
    // Parallel combine: split x into per-chunk output windows. Chunk c
    // writes x[c*C .. c*C+len) and x[half + c*C .. half + c*C + len), so we
    // hand each task two disjoint windows carved off the two halves.
    //
    // The read-only inputs are shared through one borrowed context (8
    // bytes) instead of being captured piecewise: each chunk closure then
    // carries 48 bytes and stays within the task record's inline budget —
    // asserted suite-wide by the spill-telemetry test.
    struct CombineCx<'c> {
        even: &'c [C64],
        odd: &'c [C64],
        plan: &'c Plan,
        n: usize,
        invert: bool,
    }
    let (even, odd) = scratch.split_at(half);
    let cx = CombineCx {
        even,
        odd,
        plan,
        n,
        invert,
    };
    let cx = &cx;
    let (mut lo_rest, mut hi_rest) = x.split_at_mut(half);
    let mut chunk_start = 0;
    s.taskgroup(|s| {
        while chunk_start < half {
            let len = COMBINE_CHUNK.min(half - chunk_start);
            let (lo_win, lo_tail) = lo_rest.split_at_mut(len);
            let (hi_win, hi_tail) = hi_rest.split_at_mut(len);
            lo_rest = lo_tail;
            hi_rest = hi_tail;
            let base = chunk_start;
            s.spawn_with(attrs, move |_| {
                for k in 0..lo_win.len() {
                    let t = cx.plan.twiddle(base + k, cx.n, cx.invert) * cx.odd[base + k];
                    lo_win[k] = cx.even[base + k] + t;
                    hi_win[k] = cx.even[base + k] - t;
                }
            });
            chunk_start += len;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{dft_naive, fft_serial, ifft_serial};

    fn signal(n: usize) -> Vec<C64> {
        bots_inputs::arrays::complex_signal(n, 123)
            .into_iter()
            .map(|(re, im)| C64::new(re, im))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let rt = Runtime::with_threads(4);
        let n = 2048;
        let mut x = signal(n);
        let expect = dft_naive(&x);
        fft_parallel(&rt, &mut x, false);
        for (a, b) in x.iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn bitwise_identical_to_serial() {
        // No reductions anywhere: parallel and serial must agree exactly.
        let rt = Runtime::with_threads(8);
        let n = 1 << 16;
        let mut par = signal(n);
        let mut ser = par.clone();
        fft_parallel(&rt, &mut par, false);
        fft_serial(&bots_profile::NullProbe, &mut ser);
        assert_eq!(
            par.iter()
                .map(|c| (c.re.to_bits(), c.im.to_bits()))
                .collect::<Vec<_>>(),
            ser.iter()
                .map(|c| (c.re.to_bits(), c.im.to_bits()))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn untied_roundtrip() {
        let rt = Runtime::with_threads(4);
        let n = 1 << 15;
        let orig = signal(n);
        let mut x = orig.clone();
        fft_parallel(&rt, &mut x, true);
        ifft_parallel(&rt, &mut x, true);
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn serial_and_parallel_inverse_agree() {
        let rt = Runtime::with_threads(2);
        let n = 1 << 12;
        let mut a = signal(n);
        let mut b = a.clone();
        ifft_parallel(&rt, &mut a, false);
        ifft_serial(&bots_profile::NullProbe, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }
}
