//! Property tests for FFT: round-trip recovery, Parseval energy
//! conservation and serial/parallel bitwise agreement on arbitrary
//! power-of-two signals.

use bots_fft::{fft_parallel, fft_serial, ifft_serial, C64};
use bots_profile::NullProbe;
use bots_runtime::Runtime;
use proptest::prelude::*;

fn signal_strategy() -> impl Strategy<Value = Vec<C64>> {
    (4u32..13)
        .prop_flat_map(|log_n| {
            proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1usize << log_n)
        })
        .prop_map(|pairs| pairs.into_iter().map(|(re, im)| C64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_recovers_input(orig in signal_strategy()) {
        let mut x = orig.clone();
        fft_serial(&NullProbe, &mut x);
        ifft_serial(&NullProbe, &mut x);
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn parseval_holds(orig in signal_strategy()) {
        let mut x = orig.clone();
        fft_serial(&NullProbe, &mut x);
        let time: f64 = orig.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = x.iter().map(|v| v.norm_sqr()).sum::<f64>() / orig.len() as f64;
        // Relative tolerance; signals can be near-zero so add an absolute floor.
        prop_assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
    }

    #[test]
    fn parallel_is_bitwise_serial(orig in signal_strategy(), threads in 1usize..5) {
        let rt = Runtime::with_threads(threads);
        let mut par = orig.clone();
        let mut ser = orig;
        fft_parallel(&rt, &mut par, threads % 2 == 0);
        fft_serial(&NullProbe, &mut ser);
        for (a, b) in par.iter().zip(&ser) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}
