//! Domain scenario: factorise a sparse blocked system and check the
//! residual, comparing the single-generator and multiple-generator
//! (worksharing) task schemes — the paper's §IV-D SparseLU experiment as a
//! library user would run it — plus the dependency-driven (`Deps`) scheme,
//! where block-level `depend(in/out)` clauses replace the per-iteration
//! barriers entirely.
//!
//! ```sh
//! cargo run --release --example sparse_factorization
//! ```

use bots::sparselu::{reconstruction_error, sparselu_parallel, BlockMatrix, LuGenerator};
use bots::Runtime;

fn main() {
    let (nb, bs) = (20, 32);
    let rt = Runtime::default();
    println!(
        "LU-factorising a {0}x{0} matrix of {1}x{1} blocks ({2}x{2} scalars) on {3} threads",
        nb,
        bs,
        nb * bs,
        rt.num_threads()
    );

    for gen in [LuGenerator::Single, LuGenerator::For, LuGenerator::Deps] {
        let m = BlockMatrix::generate(nb, bs, 7);
        let original = m.deep_clone();
        let blocks_before = m.present_count();

        let t0 = std::time::Instant::now();
        sparselu_parallel(&rt, &m, gen, false);
        let elapsed = t0.elapsed();

        let fill_in = m.present_count() - blocks_before;
        let err = reconstruction_error(&m, &original);
        println!(
            "  {:?} generator: {:>8.1?}, {} fill-in blocks, max |LU - A| = {:.2e}",
            gen, elapsed, fill_in, err
        );
        assert!(err < 1e-6, "factorisation residual too large: {err}");
    }

    let stats = rt.stats();
    println!(
        "\nruntime saw {} tasks ({} stolen, {:.1}% migration)",
        stats.executed,
        stats.stolen,
        100.0 * stats.steal_ratio()
    );
}
