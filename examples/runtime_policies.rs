//! Runtime-policy exploration: what the tasking-model knobs do to one
//! workload, observed through the runtime's own counters.
//!
//! Runs no-cutoff Fibonacci — the suite's overhead stress test — under
//! different runtime cut-off strategies and queue disciplines, printing
//! tasks deferred vs inlined, steals and parks. This is §IV-B/§IV-D of the
//! paper turned into an API tour.
//!
//! ```sh
//! cargo run --release --example runtime_policies
//! ```

use bots::fib::{fib_fast, fib_parallel, FibMode};
use bots::{LocalOrder, Runtime, RuntimeConfig, RuntimeCutoff};

fn main() {
    let n = 27;
    let threads = 4;
    let expected = fib_fast(n);

    let configs: Vec<(&str, RuntimeConfig)> = vec![
        ("no runtime cutoff", RuntimeConfig::new(threads)),
        (
            "max-tasks cutoff",
            RuntimeConfig::new(threads).with_cutoff(RuntimeCutoff::MaxTasks { per_worker: 8 }),
        ),
        (
            "max-depth cutoff",
            RuntimeConfig::new(threads).with_cutoff(RuntimeCutoff::MaxDepth { max_depth: 8 }),
        ),
        (
            "adaptive cutoff",
            RuntimeConfig::new(threads).with_cutoff(RuntimeCutoff::Adaptive { low: 2, high: 8 }),
        ),
        (
            "breadth-first queues",
            RuntimeConfig::new(threads).with_local_order(LocalOrder::Fifo),
        ),
        (
            "tied constraint off",
            RuntimeConfig::new(threads).with_tied_constraint(false),
        ),
    ];

    println!("fib({n}) with unbounded task creation, {threads} threads\n");
    println!(
        "{:<22} {:>9} {:>10} {:>10} {:>8} {:>7}",
        "configuration", "time", "deferred", "inlined", "stolen", "parks"
    );
    for (label, config) in configs {
        let rt = Runtime::new(config);
        let before = rt.stats();
        let t0 = std::time::Instant::now();
        let got = fib_parallel(&rt, n, FibMode::NoCutoff, false, 0);
        let elapsed = t0.elapsed();
        assert_eq!(got, expected);
        let d = rt.stats().since(&before);
        println!(
            "{:<22} {:>9.1?} {:>10} {:>10} {:>8} {:>7}",
            label,
            elapsed,
            d.spawned,
            d.inlined_if + d.inlined_cutoff + d.inlined_final,
            d.stolen,
            d.parks
        );
    }

    println!("\nreading the table: runtime cut-offs trade deferred tasks for");
    println!("inlined ones, shrinking overhead exactly as §IV-B describes —");
    println!("and the manual application cut-off (not shown) avoids even the");
    println!("bookkeeping of the inlined spawns.");
}
