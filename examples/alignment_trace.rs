//! Beyond scores: reconstruct and render an actual alignment.
//!
//! The timed BOTS kernel only reports best scores (computed in linear
//! space); the library also ships a full Gotoh traceback. This example
//! mutates a protein, aligns it against the original, and prints the
//! gapped alignment.
//!
//! ```sh
//! cargo run --release --example alignment_trace
//! ```

use bots::alignment::{align_score, align_trace, Op};
use bots::inputs::protein::{generate_proteins, ALPHABET};
use bots::inputs::Rng;
use bots::profile::NullProbe;

fn main() {
    let original = generate_proteins(1, 60, 7).remove(0);

    // Mutate: a few substitutions, one deletion run, one insertion run.
    let mut rng = Rng::new(13);
    let mut mutated = original.clone();
    for r in mutated.iter_mut() {
        if rng.chance(0.05) {
            *r = rng.below(ALPHABET as u64) as u8;
        }
    }
    let cut = 20 + rng.below(10) as usize;
    mutated.drain(cut..cut + 4); // deletion of 4 residues
    let ins_at = 40 + rng.below(8) as usize;
    for k in 0..3 {
        mutated.insert(ins_at + k, rng.below(ALPHABET as u64) as u8); // insertion of 3
    }

    let alignment = align_trace(&original, &mutated);
    let (top, bottom) = alignment.render(&original, &mutated);

    println!("score : {}", alignment.score);
    println!("gaps  : {}", alignment.gaps());
    println!();
    for (a_line, b_line) in top.as_bytes().chunks(60).zip(bottom.as_bytes().chunks(60)) {
        println!("orig    {}", String::from_utf8_lossy(a_line));
        let markers: String = a_line
            .iter()
            .zip(b_line)
            .map(|(&a, &b)| if a == b { '|' } else { ' ' })
            .collect();
        println!("        {markers}");
        println!("mutant  {}", String::from_utf8_lossy(b_line));
        println!();
    }

    // The traceback score must equal the linear-space scorer's.
    let check = align_score(&NullProbe, &original, &mutated);
    assert_eq!(alignment.score, check);
    let subs = alignment
        .ops
        .iter()
        .filter(|o| matches!(o, Op::Sub))
        .count();
    println!(
        "{} aligned columns, {} gap columns — scorer agrees ({check}).",
        subs,
        alignment.gaps()
    );
}
