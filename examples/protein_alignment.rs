//! Domain scenario: all-pairs protein similarity screening.
//!
//! Generates a synthetic protein family (some sequences are mutated copies
//! of others), scores every pair in parallel with the Alignment kernel, and
//! reports the most similar pairs — the workload BOTS's Alignment models,
//! with the output you would actually look at.
//!
//! ```sh
//! cargo run --release --example protein_alignment
//! ```

use bots::alignment::{align_all_parallel, pair_index, AlignGenerator};
use bots::inputs::protein::{generate_proteins, to_letters, ALPHABET};
use bots::inputs::Rng;
use bots::Runtime;

fn main() {
    // A family: 12 random proteins + 6 mutated copies (to create real
    // structure for the similarity ranking to find).
    let mut seqs = generate_proteins(12, 120, 2024);
    let mut rng = Rng::new(99);
    for parent in 0..6 {
        let mut copy = seqs[parent].clone();
        // ~8% point mutations.
        for r in copy.iter_mut() {
            if rng.chance(0.08) {
                *r = rng.below(ALPHABET as u64) as u8;
            }
        }
        seqs.push(copy);
    }
    let n = seqs.len();

    let rt = Runtime::default();
    println!(
        "aligning {} sequences ({} pairs) on {} threads ...",
        n,
        n * (n - 1) / 2,
        rt.num_threads()
    );
    let t0 = std::time::Instant::now();
    let scores = align_all_parallel(&rt, &seqs, AlignGenerator::For, true);
    println!("done in {:.1?}\n", t0.elapsed());

    // Rank pairs by score.
    let mut ranked: Vec<(usize, usize, i32)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            ranked.push((i, j, scores[pair_index(n, i, j)]));
        }
    }
    ranked.sort_by_key(|&(_, _, s)| std::cmp::Reverse(s));

    println!("top 6 most similar pairs (mutated copies should surface):");
    for &(i, j, score) in ranked.iter().take(6) {
        println!("  seq{i:02} ~ seq{j:02}  score {score:>5}");
        assert!(
            j >= 12,
            "a top pair should involve a mutated copy (seq12..seq17), got ({i},{j})"
        );
    }

    println!("\nexample sequence (seq00, first 60 aa):");
    println!("  {}", &to_letters(&seqs[0])[..60.min(seqs[0].len())]);
}
