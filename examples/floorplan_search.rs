//! Domain scenario: branch-and-bound floorplan optimisation with the
//! paper's nodes-per-second methodology.
//!
//! Parallel pruning makes the node count indeterministic, so wall time
//! alone misleads; BOTS therefore reports *nodes visited per second*
//! (§III-B). This example shows both numbers side by side.
//!
//! ```sh
//! cargo run --release --example floorplan_search
//! ```

use bots::floorplan::{generate_cells, search_parallel, search_serial, FloorplanMode};
use bots::profile::NullProbe;
use bots::Runtime;

fn main() {
    let cells = generate_cells(11, 0xF100_4711);
    println!("placing {} cells optimally on a 64x64 grid\n", cells.len());

    let t0 = std::time::Instant::now();
    let serial = search_serial(&NullProbe, &cells);
    let serial_time = t0.elapsed();
    let serial_rate = serial.nodes as f64 / serial_time.as_secs_f64();
    println!(
        "serial:    area {:>4}, {:>9} nodes, {:>8.1?}, {:>10.0} nodes/s",
        serial.min_area, serial.nodes, serial_time, serial_rate
    );

    for threads in [2, 4, 8] {
        let rt = Runtime::with_threads(threads);
        let t0 = std::time::Instant::now();
        let par = search_parallel(&rt, &cells, FloorplanMode::Manual, true, 4);
        let time = t0.elapsed();
        let rate = par.nodes as f64 / time.as_secs_f64();
        assert_eq!(par.min_area, serial.min_area, "optimum must be invariant");
        println!(
            "{threads:>2} threads: area {:>4}, {:>9} nodes, {:>8.1?}, {:>10.0} nodes/s ({:.2}x)",
            par.min_area,
            par.nodes,
            time,
            rate,
            rate / serial_rate
        );
    }

    println!("\nnote: node counts differ run to run — the best-so-far bound");
    println!("evolves differently under parallel exploration; the optimum");
    println!("and the nodes/s metric are the stable quantities.");
}
