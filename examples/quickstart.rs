//! Quickstart: the tasking runtime and the suite in one minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use bots::suite::runner;
use bots::{registry, InputClass, Runtime, RuntimeConfig};

fn main() {
    // --- 1. The runtime: OpenMP-style tasks -------------------------------
    let rt = Runtime::new(RuntimeConfig::new(4));

    let sum = rt.parallel(|s| {
        // This closure is the region's root task (`parallel` + `single`).
        let acc = AtomicU64::new(0);
        s.taskgroup(|s| {
            for i in 0..8u64 {
                let acc = &acc;
                // `#pragma omp task untied`, via the TaskBuilder surface.
                s.task(move |_| {
                    acc.fetch_add(i * i, Ordering::Relaxed);
                })
                .untied()
                .spawn();
            }
        }); // taskgroup = deep taskwait
        acc.load(Ordering::Relaxed)
    });
    println!("sum of squares 0..8 = {sum}");
    assert_eq!(sum, (0..8u64).map(|i| i * i).sum::<u64>());

    // --- 1b. Data-flow tasks: depend(in/out) clauses, no taskwait -------
    let (x, y) = (AtomicU64::new(0), AtomicU64::new(0));
    rt.parallel(|s| {
        let (x, y) = (&x, &y);
        s.task(move |_| x.store(20, Ordering::Relaxed))
            .after_write(x)
            .spawn();
        s.task(move |_| y.store(x.load(Ordering::Relaxed) + 22, Ordering::Relaxed))
            .after_read(x)
            .after_write(y)
            .spawn();
    });
    println!("data-flow chain result = {}", y.load(Ordering::Relaxed));
    assert_eq!(y.load(Ordering::Relaxed), 42);

    // --- 2. The suite: run every kernel's best version and verify ---------
    println!("\n{:<10} {:<16} {:>10}  result", "app", "version", "time");
    for bench in registry() {
        let version = bench.best_version();
        let t0 = std::time::Instant::now();
        let out = bench.run_parallel(&rt, InputClass::Test, version);
        let elapsed = t0.elapsed();
        runner::verify(bench.as_ref(), InputClass::Test, &out).expect("verification");
        println!(
            "{:<10} {:<16} {:>8.1?}  {}",
            bench.meta().name,
            version.label(),
            elapsed,
            out.summary
        );
    }

    // --- 3. Runtime statistics --------------------------------------------
    let stats = rt.stats();
    println!("\nruntime counters: {stats}");
}
